"""Static constraint–update independence analysis.

The stream engine re-checks the cumulative edit after every operation,
but most traffic in realistic workloads lands in constraint-irrelevant
regions of the document — the case the type-based query–update
independence line (Bidoit/Colazzo/Ulliana) and FLUX's static update
typechecking decide at compile time.  This module is the repo's version
of that analysis, specialised to the fragment ``XP{/,[],//,*}`` and the
three-op update algebra of :mod:`repro.stream.ops`.

For each :class:`~repro.constraints.model.UpdateConstraint` ``(q, σ)`` we
compile a conservative :class:`ImpactSignature` along three dimensions:

**Op kinds.**  Tree patterns are monotone: adding a node can only create
matches, deleting a subtree can only destroy them, and a move can do
both.  Starting from a *currently valid* cumulative pair ``(I₀, J)``:

* an :class:`~repro.stream.ops.AddLeaf` can never invalidate a
  ``NO_REMOVE`` constraint (its baseline answers stay matched), and
* a :class:`~repro.stream.ops.RemoveSubtree` can never invalidate a
  ``NO_INSERT`` constraint (``q(J)`` only shrinks below ``q(I₀)``);

so each constraint type is sensitive to exactly two op kinds.

**Labels.**  Every node of a match embeds a pattern node, so it carries a
label from the pattern's *label alphabet* (:func:`repro.xpath.ast.
label_alphabet`); a wildcard anywhere widens the alphabet to ⊤.  An edit
whose touched labels — the new leaf's label, or the labels occurring in
the moved/removed subtree — miss the alphabet can neither create nor
destroy matches.

**Regions.**  Every match is contained in the subtree of the node its
first spine step maps to (:func:`repro.xpath.canonical.spine_anchor`).
The nodes passing the first step's test form the constraint's *anchor
frontier* on the live :class:`~repro.trees.index.TreeIndex`, and the
preorder intervals below them are the only regions where the answer can
change.  An edit entirely outside the frontier — and unable to create a
new anchor (a fresh root child for ``/``-anchored patterns, a fresh node
carrying the anchor label for ``//``-anchored ones) — is independent
even when its labels intersect the alphabet.

The whole-set :class:`IndependenceIndex` inverts the signatures into an
``(op kind × label)`` table for O(1) per-op candidate lookup, and the
:class:`IndependenceAnalyzer` binds the index to a live tree snapshot:
``analyzer.independent(op)`` returns True only when, *given the
cumulative edit is currently valid*, applying ``op`` provably cannot
change any constraint's verdict or witnesses.  The stream engine gates
its zero-work fast path on exactly that precondition; the Hypothesis
equivalence suite pins decision streams bit-identical to full checking.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from collections.abc import Iterable

from repro.constraints.model import (
    ConstraintSet,
    ConstraintType,
    UpdateConstraint,
)
from repro.stream.ops import AddLeaf, Move, RemoveSubtree, StreamOp
from repro.trees.index import TreeIndex
from repro.xpath.ast import Axis, label_alphabet
from repro.xpath.canonical import spine_anchor

# Op-kind keys (the wire tags of repro.stream.ops).
KIND_ADD = "add-leaf"
KIND_MOVE = "move"
KIND_REMOVE = "remove-subtree"

# Which op kinds can invalidate a currently-valid pair, per constraint
# type (the monotonicity argument in the module docstring).
_KINDS_OF_TYPE: dict[ConstraintType, frozenset[str]] = {
    ConstraintType.NO_REMOVE: frozenset((KIND_MOVE, KIND_REMOVE)),
    ConstraintType.NO_INSERT: frozenset((KIND_ADD, KIND_MOVE)),
}


@dataclass(frozen=True)
class ImpactSignature:
    """What one constraint is sensitive to, conservatively.

    ``labels is None`` encodes ⊤ (the range contains a wildcard, so any
    label may participate in a match).  ``first_axis``/``first_label``
    describe the range's first spine step — the anchor frontier the
    region dimension is derived from at lookup time, against the live
    snapshot.
    """

    constraint: UpdateConstraint
    kinds: frozenset[str]
    labels: frozenset[str] | None
    first_axis: Axis
    first_label: str | None

    @property
    def is_top(self) -> bool:
        """True when the label dimension is ⊤ (wildcard in the range)."""
        return self.labels is None

    def region_anchors(self, index: TreeIndex) -> list[int] | None:
        """The anchor frontier on ``index`` — nodes whose subtrees can
        contain matches.  ``None`` means the whole tree (``//*``-style
        first steps anchor anywhere)."""
        if self.first_axis is Axis.DESC:
            if self.first_label is None:
                return None
            return index.minimal_cover(
                index.nodes_with_label(self.first_label))
        root = index.root
        if self.first_label is None:
            return list(index.children(root))
        return [c for c in index.children(root)
                if index.label(c) == self.first_label]

    def __str__(self) -> str:
        labels = "⊤" if self.labels is None else \
            "{" + ",".join(sorted(self.labels)) + "}"
        kinds = ",".join(sorted(self.kinds))
        return f"{self.constraint}: kinds[{kinds}] labels{labels}"


def impact_signature(constraint: UpdateConstraint) -> ImpactSignature:
    """Compile one constraint's conservative impact signature."""
    axis, label = spine_anchor(constraint.range)
    return ImpactSignature(
        constraint=constraint,
        kinds=_KINDS_OF_TYPE[constraint.type],
        labels=label_alphabet(constraint.range),
        first_axis=axis,
        first_label=label,
    )


class IndependenceIndex:
    """Whole-set inversion of the signatures: ``(op kind × label)`` →
    possibly-impacted signatures, for O(1) per-op candidate lookup.

    Signatures whose label dimension is ⊤ cannot be excluded by any
    label, so they are kept in a per-kind side table consulted on every
    lookup (their region dimension still prunes at analysis time).
    """

    __slots__ = ("_signatures", "_by_key", "_top", "_probe_labels")

    def __init__(self, constraints: ConstraintSet | Iterable[UpdateConstraint]):
        if not isinstance(constraints, ConstraintSet):
            constraints = ConstraintSet(constraints)
        self._signatures = tuple(impact_signature(c) for c in constraints)
        by_key: dict[tuple[str, str], list[ImpactSignature]] = {}
        top: dict[str, list[ImpactSignature]] = {
            KIND_ADD: [], KIND_MOVE: [], KIND_REMOVE: []}
        probe: set[str] = set()
        for sig in self._signatures:
            if sig.labels is None:
                for kind in sig.kinds:
                    top[kind].append(sig)
            else:
                probe.update(sig.labels)
                for kind in sig.kinds:
                    for label in sig.labels:
                        by_key.setdefault((kind, label), []).append(sig)
            # Anchor labels of ⊤ signatures still matter to the subtree
            # probes of move/remove (a moved anchor relocates matches).
            if sig.first_label is not None:
                probe.add(sig.first_label)
        self._by_key: dict[tuple[str, str], tuple[ImpactSignature, ...]] = {
            key: tuple(sigs) for key, sigs in by_key.items()}
        self._top: dict[str, tuple[ImpactSignature, ...]] = {
            kind: tuple(sigs) for kind, sigs in top.items()}
        self._probe_labels = frozenset(probe)

    @property
    def signatures(self) -> tuple[ImpactSignature, ...]:
        return self._signatures

    @property
    def probe_labels(self) -> frozenset[str]:
        """Labels worth probing for inside a moved/removed subtree."""
        return self._probe_labels

    def lookup(self, kind: str, label: str) -> tuple[ImpactSignature, ...]:
        """Signatures possibly impacted by a ``kind`` op touching
        ``label`` — one dict probe plus the ⊤ side table."""
        keyed = self._by_key.get((kind, label), ())
        return keyed + self._top.get(kind, ())

    def candidates(self, kind: str,
                   labels: Iterable[str]) -> tuple[ImpactSignature, ...]:
        """Deduplicated union of :meth:`lookup` over several labels."""
        found: dict[int, ImpactSignature] = {
            id(sig): sig for sig in self._top.get(kind, ())}
        by_key = self._by_key
        for label in labels:
            for sig in by_key.get((kind, label), ()):
                found[id(sig)] = sig
        return tuple(found.values())

    def stats(self) -> dict[str, int]:
        """Shape of the compiled index (exposed through the service)."""
        return {
            "signatures": len(self._signatures),
            "keys": len(self._by_key),
            "wildcard": sum(1 for s in self._signatures if s.is_top),
        }

    def __len__(self) -> int:
        return len(self._signatures)

    def __repr__(self) -> str:
        stats = self.stats()
        return (f"IndependenceIndex({stats['signatures']} signatures, "
                f"{stats['keys']} keys, {stats['wildcard']} ⊤)")


class IndependenceAnalyzer:
    """The compiled index bound to one live tree snapshot.

    :meth:`independent` must be consulted *before* the edit is applied
    (region tests read pre-edit slots) and its verdict is only meaningful
    under the caller-guaranteed precondition that the cumulative edit is
    currently valid — the stream engine's fast-path gate.  Any op the
    analyzer cannot place (unknown nodes, the root) is conservatively
    reported dependent; the engine's structural validation then produces
    the exact same rejection it always did.
    """

    __slots__ = ("_index", "_tree", "_regions", "_regions_rev")

    def __init__(self, index: IndependenceIndex, tree_index: TreeIndex):
        self._index = index
        self._tree = tree_index
        # sig-id -> sorted anchor intervals (None = whole tree), per rev.
        self._regions: dict[int, tuple[tuple[int, ...],
                                       tuple[int, ...]] | None] = {}
        self._regions_rev = tree_index.revision

    @property
    def index(self) -> IndependenceIndex:
        return self._index

    @property
    def tree_index(self) -> TreeIndex:
        return self._tree

    # ------------------------------------------------------------------
    # Region signatures (anchor frontiers, cached per revision)
    # ------------------------------------------------------------------
    def _region_of(self, sig: ImpactSignature
                   ) -> tuple[tuple[int, ...], tuple[int, ...]] | None:
        idx = self._tree
        if self._regions_rev != idx.revision:
            self._regions.clear()
            self._regions_rev = idx.revision
        key = id(sig)
        if key not in self._regions:
            anchors = sig.region_anchors(idx)
            if anchors is None:
                region = None
            else:
                intervals = sorted(idx.interval(a) for a in anchors)
                region = (tuple(lo for lo, _ in intervals),
                          tuple(hi for _, hi in intervals))
            self._regions[key] = region
        return self._regions[key]

    def _in_region(self, sig: ImpactSignature, slot: int) -> bool:
        """Is ``slot`` inside the signature's anchor frontier?"""
        region = self._region_of(sig)
        if region is None:
            return True
        starts, ends = region
        at = bisect_right(starts, slot) - 1
        return at >= 0 and slot <= ends[at]

    # ------------------------------------------------------------------
    # Per-op verdicts
    # ------------------------------------------------------------------
    def independent(self, op: StreamOp) -> bool:
        """Provably unable to change any constraint's verdict, given the
        cumulative edit is currently valid?"""
        if isinstance(op, AddLeaf):
            return self._add_independent(op)
        if isinstance(op, Move):
            return self._move_independent(op)
        if isinstance(op, RemoveSubtree):
            return self._remove_independent(op)
        return False  # markers always take the engine's marker paths

    def _add_independent(self, op: AddLeaf) -> bool:
        idx = self._tree
        if op.parent not in idx:
            return False
        sigs = self._index.lookup(KIND_ADD, op.label)
        if not sigs:
            return True
        slot = idx.pre(op.parent)
        root = idx.root
        for sig in sigs:
            # Inside an anchor subtree: the new leaf may witness a match.
            if self._in_region(sig, slot):
                return False
            # Outside every anchor — but could the leaf itself become one?
            if sig.first_axis is Axis.DESC:
                if sig.first_label is None or op.label == sig.first_label:
                    return False
            elif op.parent == root and (sig.first_label is None
                                        or op.label == sig.first_label):
                return False
        return True

    def _move_independent(self, op: Move) -> bool:
        idx = self._tree
        if op.nid not in idx or op.new_parent not in idx or op.nid == idx.root:
            return False
        present = self._present_labels(op.nid)
        sigs = self._index.candidates(KIND_MOVE, present)
        if not sigs:
            return True
        slot = idx.pre(op.nid)
        dest = idx.pre(op.new_parent)
        root = idx.root
        for sig in sigs:
            # Leaving or entering an anchor subtree changes its contents.
            if self._in_region(sig, slot) or self._in_region(sig, dest):
                return False
            if not self._subtree_clear_of_anchors(sig, op.nid, present):
                return False
            # A move to the root can mint a '/'-anchored frontier node.
            if (sig.first_axis is Axis.CHILD and op.new_parent == root
                    and (sig.first_label is None
                         or idx.label(op.nid) == sig.first_label)):
                return False
        return True

    def _remove_independent(self, op: RemoveSubtree) -> bool:
        idx = self._tree
        if op.nid not in idx or op.nid == idx.root:
            return False
        present = self._present_labels(op.nid)
        sigs = self._index.candidates(KIND_REMOVE, present)
        if not sigs:
            return True
        slot = idx.pre(op.nid)
        for sig in sigs:
            if self._in_region(sig, slot):
                return False
            if not self._subtree_clear_of_anchors(sig, op.nid, present):
                return False
        return True

    def _present_labels(self, nid: int) -> list[str]:
        """Probe labels occurring in the subtree at ``nid`` (self incl.)."""
        idx = self._tree
        own = idx.label(nid)
        return [label for label in self._index.probe_labels
                if label == own
                or idx.count_descendants_with_label(label, nid) > 0]

    def _subtree_clear_of_anchors(self, sig: ImpactSignature, nid: int,
                                  present: list[str]) -> bool:
        """No potential anchor of ``sig`` inside the subtree at ``nid``?

        ``//``-anchored signatures anchor at any node carrying the anchor
        label, so relocating or deleting such a node relocates or deletes
        a whole match region.  (``/``-anchored frontiers are root
        children; a root child's own interval is part of the region, so
        the caller's region test already covers them.)
        """
        if sig.first_axis is not Axis.DESC:
            return True
        if sig.first_label is None:
            return False
        return sig.first_label not in present

    def __repr__(self) -> str:
        return (f"IndependenceAnalyzer({self._index!r}, "
                f"|J|={self._tree.size}, rev {self._tree.revision})")


__all__ = [
    "ImpactSignature", "IndependenceIndex", "IndependenceAnalyzer",
    "impact_signature", "KIND_ADD", "KIND_MOVE", "KIND_REMOVE",
]

"""Ground-truth oracles on bounded universes.

These oracles decide implication by exhaustive enumeration of candidate
counterexamples up to a size bound.  Their verdicts are one-sided:

* ``REFUTED`` is definitive (the witness pair is handed back and checked);
* ``NO_COUNTEREXAMPLE_UP_TO_BOUND`` is definitive *for the bound* only.

The test-suite uses them in both directions: an engine claiming IMPLIED
must survive the oracle's search, and an engine claiming NOT_IMPLIED must
produce a certificate the validity checker accepts.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence

from repro.bruteforce.enumerate_trees import all_instances, update_pairs
from repro.constraints.model import ConstraintSet, UpdateConstraint
from repro.constraints.validity import is_valid, violation_of
from repro.trees.ops import remap_ids
from repro.trees.tree import DataTree
from repro.xpath.properties import labels_of


@dataclass(frozen=True)
class OracleOutcome:
    counterexample: tuple[DataTree, DataTree] | None
    pairs_checked: int

    @property
    def refuted(self) -> bool:
        return self.counterexample is not None


def _alphabet(premises: ConstraintSet, conclusion: UpdateConstraint,
              extra: Iterable[str] = ()) -> tuple[str, ...]:
    labels = labels_of(conclusion.range, *premises.ranges) | set(extra)
    labels.add("z")  # one fresh label suffices for positive patterns
    return tuple(sorted(labels))


def oracle_implies(premises: ConstraintSet, conclusion: UpdateConstraint,
                   max_nodes: int = 3, budget: int | None = 300000) -> OracleOutcome:
    """Search all small update pairs for a counterexample to ``C ⊨ c``."""
    checked = 0
    for before, after in update_pairs(max_nodes, _alphabet(premises, conclusion),
                                      budget=budget):
        checked += 1
        if violation_of(before, after, conclusion) is None:
            continue
        if is_valid(before, after, premises):
            return OracleOutcome((before, after), checked)
    return OracleOutcome(None, checked)


def oracle_implies_on(premises: ConstraintSet, current: DataTree,
                      conclusion: UpdateConstraint,
                      max_nodes: int = 3, budget: int | None = 300000
                      ) -> OracleOutcome:
    """Search all small pasts ``I`` for a counterexample to ``C ⊨_J c``.

    Candidate pasts are built from bounded shapes whose nodes are optionally
    identified (injectively, label-respecting) with nodes of ``J``.
    """
    data_labels = {node.label for node in current.nodes() if node.nid != current.root}
    alphabet = _alphabet(premises, conclusion, extra=data_labels)
    j_nodes = [nid for nid in current.node_ids() if nid != current.root]
    checked = 0
    for proto in all_instances(max_nodes, alphabet):
        proto_nodes = [n for n in proto.node_ids() if n != proto.root]
        for mapping in _past_identifications(proto, proto_nodes, current, j_nodes):
            past = remap_ids(proto, mapping)
            checked += 1
            if budget is not None and checked > budget:
                return OracleOutcome(None, checked)
            if violation_of(past, current, conclusion) is None:
                continue
            if is_valid(past, current, premises):
                return OracleOutcome((past, current), checked)
    return OracleOutcome(None, checked)


def _past_identifications(proto: DataTree, proto_nodes: Sequence[int],
                          current: DataTree, j_nodes: Sequence[int],
                          index: int = 0, acc: dict[int, int] | None = None):
    """Enumerate partial injective identifications proto-node -> J-node."""
    acc = {} if acc is None else acc
    if index == len(proto_nodes):
        yield dict(acc)
        return
    node = proto_nodes[index]
    # Option 1: keep the node fresh.
    yield from _past_identifications(proto, proto_nodes, current, j_nodes,
                                     index + 1, acc)
    # Option 2: identify with an unused same-labelled J node.
    used = set(acc.values())
    for j in j_nodes:
        if j in used or current.label(j) != proto.label(node):
            continue
        acc[node] = j
        yield from _past_identifications(proto, proto_nodes, current, j_nodes,
                                         index + 1, acc)
        del acc[node]

"""Exhaustive small-universe oracles used as ground truth in tests."""

from repro.bruteforce.enumerate_trees import (
    all_instances,
    forest_shapes,
    materialize,
    tree_shapes,
    update_pairs,
)
from repro.bruteforce.oracle import OracleOutcome, oracle_implies, oracle_implies_on

__all__ = [
    "all_instances",
    "update_pairs",
    "tree_shapes",
    "forest_shapes",
    "materialize",
    "OracleOutcome",
    "oracle_implies",
    "oracle_implies_on",
]

"""Exhaustive enumeration of small unordered labelled trees and update pairs.

The brute-force oracle is the library's ground truth on tiny universes:
every decision engine is validated against it in the test-suite.  Trees are
enumerated as canonical shapes (label + sorted multiset of child shapes) to
avoid isomorphic duplicates; update pairs enumerate, on top of two shapes,
every injective matching of same-labelled nodes — the matched nodes are the
survivors that keep their identity across the update, exactly the freedom
Definition 2.3 grants.
"""

from __future__ import annotations

from functools import lru_cache
from itertools import combinations
from collections.abc import Iterator, Sequence

from repro.trees.tree import DataTree

Shape = tuple[str, tuple]  # (label, sorted tuple of child shapes)


@lru_cache(maxsize=None)
def tree_shapes(size: int, labels: tuple[str, ...]) -> tuple[Shape, ...]:
    """All canonical tree shapes with exactly ``size`` nodes."""
    if size <= 0:
        return ()
    shapes: list[Shape] = []
    for label in labels:
        for forest in forest_shapes(size - 1, labels):
            shapes.append((label, forest))
    return tuple(shapes)


@lru_cache(maxsize=None)
def forest_shapes(size: int, labels: tuple[str, ...]) -> tuple[tuple[Shape, ...], ...]:
    """All canonical forests (sorted shape multisets) with ``size`` nodes."""
    if size == 0:
        return ((),)
    forests: set[tuple[Shape, ...]] = set()
    for first_size in range(1, size + 1):
        for first in tree_shapes(first_size, labels):
            for rest in forest_shapes(size - first_size, labels):
                forests.add(tuple(sorted((first,) + rest)))
    return tuple(sorted(forests))


def all_instances(max_nodes: int, labels: Sequence[str]) -> Iterator[DataTree]:
    """All trees with up to ``max_nodes`` non-root nodes (root excluded)."""
    label_key = tuple(labels)
    for size in range(0, max_nodes + 1):
        for forest in forest_shapes(size, label_key):
            yield materialize(forest)


def materialize(forest: tuple[Shape, ...]) -> DataTree:
    """Turn a canonical forest into a :class:`DataTree` (fresh ids)."""
    tree = DataTree()

    def attach(parent: int, shape: Shape) -> None:
        nid = tree.add_child(parent, shape[0])
        for child in shape[1]:
            attach(nid, child)

    for shape in forest:
        attach(tree.root, shape)
    return tree


def update_pairs(max_nodes: int, labels: Sequence[str],
                 budget: int | None = None) -> Iterator[tuple[DataTree, DataTree]]:
    """All update pairs ``(I, J)`` over trees of bounded size.

    For each pair of shapes, every injective matching between same-labelled
    nodes is enumerated; matched nodes share an identifier (they are the
    same node before and after), unmatched ones are distinct nodes.
    """
    instances = list(all_instances(max_nodes, labels))
    produced = 0
    for before_proto in instances:
        before_nodes = [n for n in before_proto.node_ids() if n != before_proto.root]
        for after_proto in instances:
            after_nodes = [n for n in after_proto.node_ids() if n != after_proto.root]
            for mapping in _matchings(before_proto, before_nodes,
                                      after_proto, after_nodes):
                before = before_proto.copy()
                after = _with_shared_ids(after_proto, mapping)
                yield before, after
                produced += 1
                if budget is not None and produced >= budget:
                    return


def _matchings(before: DataTree, before_nodes: list[int],
               after: DataTree, after_nodes: list[int]) -> Iterator[dict[int, int]]:
    """Injective partial matchings between same-labelled nodes (after->before)."""
    for count in range(0, min(len(before_nodes), len(after_nodes)) + 1):
        for before_subset in combinations(before_nodes, count):
            for after_subset in combinations(after_nodes, count):
                yield from _bijections(before, list(before_subset),
                                       after, list(after_subset))


def _bijections(before: DataTree, before_subset: list[int],
                after: DataTree, after_subset: list[int],
                acc: dict[int, int] | None = None) -> Iterator[dict[int, int]]:
    acc = {} if acc is None else acc
    if not after_subset:
        yield dict(acc)
        return
    target = after_subset[0]
    for i, source in enumerate(before_subset):
        if before.label(source) != after.label(target):
            continue
        acc[target] = source
        yield from _bijections(before, before_subset[:i] + before_subset[i + 1:],
                               after, after_subset[1:], acc)
        del acc[target]


def _with_shared_ids(after_proto: DataTree, mapping: dict[int, int]) -> DataTree:
    from repro.trees.ops import remap_ids

    return remap_ids(after_proto, mapping)

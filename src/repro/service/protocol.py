"""The wire-level request/response protocol of the constraint service.

Every interaction with a :class:`~repro.service.service.ConstraintService`
— registering documents and compiled constraint sets, implication and
instance-based queries, update-stream enforcement — is one
:class:`Request` answered by one :class:`Response`.  Both sides are frozen
dataclasses holding *live* objects (patterns, trees, ops), with a
JSON-safe dict form via ``to_dict`` / ``from_dict``:

* constraint ranges travel as their XPath text (``str(pattern)`` parses
  back to an equal canonical form);
* documents travel in the nested-dict interchange form of
  :mod:`repro.trees.serialize` (node identifiers preserved);
* update logs travel through :func:`repro.stream.ops.op_to_dict`.

The dict forms are stable across processes — ``request_from_dict(
request.to_dict())`` rebuilds an equivalent request anywhere (the shard
workers and a future network front end rely on this), and
:func:`response_checksum` folds a response's wire form into one integer so
two executors' answer streams can be compared wholesale.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from typing import Any

from repro.certify.templates import (
    UpdateTemplate,
    bindings_from_wire,
    bindings_to_wire,
)
from repro.constraints.model import ConstraintType, UpdateConstraint
from repro.constraints.validity import Violation
from repro.errors import CertifyError, ServiceError
from repro.implication.result import ImplicationResult
from repro.stream.log import Decision
from repro.stream.ops import StreamOp, op_from_dict, op_to_dict
from repro.trees import serialize
from repro.trees.tree import DataTree
from repro.xpath.parser import parse

#: Version of the request/response wire protocol.  The socket front end
#: (:mod:`repro.server`) sends it in its hello frame and rejects clients
#: that expect a different one; bump on any incompatible change to the
#: dict forms below.
PROTOCOL_VERSION = 1


# ----------------------------------------------------------------------
# Constraint wire form
# ----------------------------------------------------------------------
def constraint_to_wire(constraint: UpdateConstraint) -> list:
    """``(q, σ)`` as ``[xpath_text, type_value]``."""
    return [str(constraint.range), constraint.type.value]


def constraint_from_wire(pair) -> UpdateConstraint:
    try:
        text, kind = pair
        return UpdateConstraint(parse(text), ConstraintType(kind))
    except (TypeError, ValueError) as exc:
        raise ServiceError(f"bad constraint wire form {pair!r}: {exc}") from None


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------
class Request:
    """Base of the request union; concrete kinds register themselves."""

    kind = ""

    def to_dict(self) -> dict:  # pragma: no cover - abstract
        raise NotImplementedError

    @classmethod
    def from_dict(cls, data: dict) -> "Request":  # pragma: no cover - abstract
        raise NotImplementedError

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)


@dataclass(frozen=True)
class RegisterConstraints(Request):
    """Name a constraint set; the service compiles it once, on first use."""

    kind = "register-constraints"

    name: str
    constraints: tuple[UpdateConstraint, ...]
    replace: bool = False

    def to_dict(self) -> dict:
        return {"request": self.kind, "name": self.name,
                "constraints": [constraint_to_wire(c) for c in self.constraints],
                "replace": self.replace}

    @classmethod
    def from_dict(cls, data: dict) -> "RegisterConstraints":
        return cls(name=data["name"],
                   constraints=tuple(constraint_from_wire(pair)
                                     for pair in data["constraints"]),
                   replace=bool(data.get("replace", False)))


@dataclass(frozen=True)
class RegisterDocument(Request):
    """Adopt a document under a name (instance queries + enforcement)."""

    kind = "register-document"

    name: str
    tree: DataTree
    replace: bool = False

    def to_dict(self) -> dict:
        return {"request": self.kind, "name": self.name,
                "tree": serialize.to_dict(self.tree), "replace": self.replace}

    @classmethod
    def from_dict(cls, data: dict) -> "RegisterDocument":
        return cls(name=data["name"], tree=serialize.from_dict(data["tree"]),
                   replace=bool(data.get("replace", False)))


@dataclass(frozen=True)
class ImplicationQuery(Request):
    """``C ⊨ c?`` for a batch of conclusions against a named set (Table 1)."""

    kind = "implication"

    constraints: str
    conclusions: tuple[UpdateConstraint, ...]
    fail_fast: bool = False
    require_decision: bool = False

    def to_dict(self) -> dict:
        return {"request": self.kind, "constraints": self.constraints,
                "conclusions": [constraint_to_wire(c) for c in self.conclusions],
                "fail_fast": self.fail_fast,
                "require_decision": self.require_decision}

    @classmethod
    def from_dict(cls, data: dict) -> "ImplicationQuery":
        return cls(constraints=data["constraints"],
                   conclusions=tuple(constraint_from_wire(pair)
                                     for pair in data["conclusions"]),
                   fail_fast=bool(data.get("fail_fast", False)),
                   require_decision=bool(data.get("require_decision", False)))


@dataclass(frozen=True)
class InstanceQuery(Request):
    """``C ⊨_J c?`` against a named document's current state (Table 2)."""

    kind = "instance-implication"

    constraints: str
    document: str
    conclusions: tuple[UpdateConstraint, ...]
    fail_fast: bool = False
    require_decision: bool = False
    max_moves: int = 2
    search_budget: int = 5000

    def to_dict(self) -> dict:
        return {"request": self.kind, "constraints": self.constraints,
                "document": self.document,
                "conclusions": [constraint_to_wire(c) for c in self.conclusions],
                "fail_fast": self.fail_fast,
                "require_decision": self.require_decision,
                "max_moves": self.max_moves,
                "search_budget": self.search_budget}

    @classmethod
    def from_dict(cls, data: dict) -> "InstanceQuery":
        return cls(constraints=data["constraints"], document=data["document"],
                   conclusions=tuple(constraint_from_wire(pair)
                                     for pair in data["conclusions"]),
                   fail_fast=bool(data.get("fail_fast", False)),
                   require_decision=bool(data.get("require_decision", False)),
                   max_moves=int(data.get("max_moves", 2)),
                   search_budget=int(data.get("search_budget", 5000)))


@dataclass(frozen=True)
class StreamSubmit(Request):
    """Enforce a slice of an update log against a named document.

    The first submission for a document opens its enforcement stream
    under the named policy; later submissions must name the same policy
    (one live stream per document).
    """

    kind = "stream-submit"

    document: str
    constraints: str
    ops: tuple[StreamOp, ...]

    def to_dict(self) -> dict:
        return {"request": self.kind, "document": self.document,
                "constraints": self.constraints,
                "ops": [op_to_dict(op) for op in self.ops]}

    @classmethod
    def from_dict(cls, data: dict) -> "StreamSubmit":
        return cls(document=data["document"], constraints=data["constraints"],
                   ops=tuple(op_from_dict(d) for d in data["ops"]))


@dataclass(frozen=True)
class RegisterTemplate(Request):
    """Register an update template against a named constraint set.

    The service runs :func:`repro.certify.certify` once at registration:
    a certified template is stored (and journaled — recovery re-certifies
    deterministically) and becomes eligible for :class:`CertifiedSubmit`;
    a rejected or unknown one is **not** stored, and the answering
    :class:`Ack` carries the verdict and search accounting in ``stats``
    (``certify.certified``, ``certify.rejected``, ``certify.attempts``,
    witness sizes — counterexample *objects* stay server-side, like
    refutation certificates).
    """

    kind = "register-template"

    name: str
    template: UpdateTemplate
    constraints: str
    replace: bool = False

    def to_dict(self) -> dict:
        return {"request": self.kind, "name": self.name,
                "template": self.template.to_dict(),
                "constraints": self.constraints, "replace": self.replace}

    @classmethod
    def from_dict(cls, data: dict) -> "RegisterTemplate":
        try:
            template = UpdateTemplate.from_dict(data["template"])
        except CertifyError as exc:
            raise ValueError(str(exc)) from None
        return cls(name=data["name"], template=template,
                   constraints=data["constraints"],
                   replace=bool(data.get("replace", False)))


@dataclass(frozen=True)
class CertifiedSubmit(Request):
    """Run one certified-template instantiation on the hot path.

    ``template`` names a template previously registered (and certified)
    against ``constraints``; ``bindings`` fills its holes.  The server
    validates only the template guard, applies the whole bracket with no
    per-op checking, journals it for recovery, and answers with the
    bracket's :class:`StreamDecisions` — bit-identical to submitting the
    instantiated ops through :class:`StreamSubmit`.
    """

    kind = "certified-submit"

    document: str
    constraints: str
    template: str
    bindings: tuple[tuple[str, int | str], ...]

    def to_dict(self) -> dict:
        return {"request": self.kind, "document": self.document,
                "constraints": self.constraints, "template": self.template,
                "bindings": bindings_to_wire(dict(self.bindings))}

    @classmethod
    def from_dict(cls, data: dict) -> "CertifiedSubmit":
        try:
            bindings = bindings_from_wire(data["bindings"])
        except CertifyError as exc:
            raise ValueError(str(exc)) from None
        return cls(document=data["document"],
                   constraints=data["constraints"],
                   template=data["template"],
                   bindings=tuple(sorted(bindings.items())))


@dataclass(frozen=True)
class FleetSubmit(Request):
    """Submit one or more write *epochs* against a fleet of documents.

    The first submission for a ``(documents, constraints)`` pair opens
    the fleet session — the named documents are checked together through
    a :class:`~repro.masks.fleet.FleetEvaluator` under the named policy;
    later submissions with the same pair continue it (the epoch counter
    and decision checksum carry across).  ``backend`` picks the mask
    backend by name (``None`` = the server's environment default); the
    response is backend-independent.

    Each epoch maps document names to that document's operations and
    settles in one batched check: violating documents are rolled back to
    their pre-epoch state.
    """

    kind = "fleet-submit"

    documents: tuple[str, ...]
    constraints: str
    epochs: tuple[tuple[tuple[str, tuple[StreamOp, ...]], ...], ...]
    backend: str | None = None

    def to_dict(self) -> dict:
        data = {"request": self.kind, "documents": list(self.documents),
                "constraints": self.constraints,
                "epochs": [[[doc, [op_to_dict(op) for op in ops]]
                            for doc, ops in epoch]
                           for epoch in self.epochs]}
        if self.backend is not None:
            data["backend"] = self.backend
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "FleetSubmit":
        return cls(
            documents=tuple(data["documents"]),
            constraints=data["constraints"],
            epochs=tuple(
                tuple((doc, tuple(op_from_dict(d) for d in ops))
                      for doc, ops in epoch)
                for epoch in data["epochs"]),
            backend=data.get("backend"))


@dataclass(frozen=True)
class StreamStatus(Request):
    """Where does a document's enforcement stream stand?

    Answered with an :class:`Ack` (``registered="stream"``) whose ``size``
    is the stream's decision count and whose ``stats`` carry the
    :class:`~repro.stream.engine.StreamStats` counters — ops seen,
    accepted/rejected, transaction outcomes, fast-path hits and the total
    audit length (minus the snapshot-internal ``revision``) — so a
    reconnecting client recovers its observability state, not just the
    sequence position.  The durable server's clients compare the decision
    count against what they saw acknowledged to learn whether a last
    in-flight submission survived the crash — journaling is at-most-once
    per submission, never silently partial.
    """

    kind = "stream-status"

    document: str

    def to_dict(self) -> dict:
        return {"request": self.kind, "document": self.document}

    @classmethod
    def from_dict(cls, data: dict) -> "StreamStatus":
        return cls(document=data["document"])


@dataclass(frozen=True)
class MetricsRequest(Request):
    """A live introspection snapshot of the serving process.

    Answered with a :class:`MetricsSnapshot` of the process-global
    :class:`~repro.obs.MetricsRegistry` plus per-stream counters.  The
    socket server answers it out-of-band — before the backpressure gate
    and without queueing behind any document worker — so the endpoint
    stays serveable while the service is overloaded or draining.
    """

    kind = "metrics"

    def to_dict(self) -> dict:
        return {"request": self.kind}

    @classmethod
    def from_dict(cls, data: dict) -> "MetricsRequest":
        return cls()


_REQUEST_KINDS: dict[str, type[Request]] = {
    cls.kind: cls
    for cls in (RegisterConstraints, RegisterDocument, RegisterTemplate,
                ImplicationQuery, InstanceQuery, StreamSubmit, StreamStatus,
                CertifiedSubmit, FleetSubmit, MetricsRequest)
}


def request_from_dict(data: dict) -> Request:
    """Rebuild any request from its wire dict (inverse of ``to_dict``)."""
    try:
        kind = data["request"]
    except (TypeError, KeyError):
        raise ServiceError(f"malformed request payload {data!r}: "
                           "missing 'request' kind") from None
    cls = _REQUEST_KINDS.get(kind) if isinstance(kind, str) else None
    if cls is None:
        raise ServiceError(f"unknown request kind {kind!r}; expected one of "
                           f"{sorted(_REQUEST_KINDS)}")
    try:
        return cls.from_dict(data)
    except (KeyError, TypeError, ValueError) as exc:
        # ValueError covers payloads that are shaped right but carry bad
        # values (an op dict with an unknown kind, a non-integer id): a
        # malformed frame must surface as ServiceError -> ErrorResponse,
        # never as a raw exception out of ``handle``.
        raise ServiceError(f"malformed {kind!r} request: {exc}") from None


def request_from_json(payload: str) -> Request:
    return request_from_dict(json.loads(payload))


# ----------------------------------------------------------------------
# Responses
# ----------------------------------------------------------------------
class Response:
    """Base of the response union."""

    kind = ""
    ok = True

    def to_dict(self) -> dict:  # pragma: no cover - abstract
        raise NotImplementedError

    @classmethod
    def from_dict(cls, data: dict) -> "Response":  # pragma: no cover - abstract
        raise NotImplementedError

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)


@dataclass(frozen=True)
class Ack(Response):
    """A registration took effect (``size`` = constraints or nodes).

    Constraint-set acks carry ``stats``: sorted ``(name, value)`` pairs
    from the static analyzer's :meth:`~repro.analysis.IndependenceIndex.
    stats` — how many impact signatures the set compiled to, how many
    (kind, label) keys they index under, and how many are wildcard (⊤).
    Omitted from the wire form when empty, so document acks (and older
    recorded responses) keep their exact wire shape.
    """

    kind = "ack"

    registered: str
    name: str
    size: int
    stats: tuple[tuple[str, int], ...] = ()

    def to_dict(self) -> dict:
        data = {"response": self.kind, "registered": self.registered,
                "name": self.name, "size": self.size}
        if self.stats:
            data["stats"] = [list(pair) for pair in self.stats]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "Ack":
        return cls(registered=data["registered"], name=data["name"],
                   size=int(data["size"]),
                   stats=tuple((str(k), int(v))
                               for k, v in data.get("stats", ())))


@dataclass(frozen=True)
class Verdict:
    """One conclusion's answer, flattened for the wire.

    ``refuted`` marks a NOT_IMPLIED answer that carries a counterexample
    certificate.  The certificate *trees* (and their witness nodes) stay
    server-side — constructed counterexamples allocate fresh node ids per
    call, so shipping their ids would make equal answer streams compare
    unequal; fetch certificates through the live-object API
    (:meth:`repro.service.service.ConstraintService.session`) when
    forensics are needed.
    """

    answer: str
    engine: str
    reason: str = ""
    refuted: bool = False

    @staticmethod
    def of(result: ImplicationResult) -> "Verdict":
        return Verdict(answer=result.answer.value, engine=result.engine,
                       reason=result.reason,
                       refuted=result.counterexample is not None)

    def to_dict(self) -> dict:
        return {"answer": self.answer, "engine": self.engine,
                "reason": self.reason, "refuted": self.refuted}

    @classmethod
    def from_dict(cls, data: dict) -> "Verdict":
        return cls(answer=data["answer"], engine=data["engine"],
                   reason=data.get("reason", ""),
                   refuted=bool(data.get("refuted", False)))


@dataclass(frozen=True)
class QueryAnswers(Response):
    """Aligned verdicts for a query batch (``None`` = fail-fast skipped)."""

    kind = "answers"

    verdicts: tuple[Verdict | None, ...]

    @property
    def answers(self) -> tuple[str | None, ...]:
        return tuple(v.answer if v is not None else None for v in self.verdicts)

    def to_dict(self) -> dict:
        return {"response": self.kind,
                "verdicts": [v.to_dict() if v is not None else None
                             for v in self.verdicts]}

    @classmethod
    def from_dict(cls, data: dict) -> "QueryAnswers":
        return cls(verdicts=tuple(
            Verdict.from_dict(v) if v is not None else None
            for v in data["verdicts"]))


@dataclass(frozen=True)
class WireViolation:
    """A :class:`~repro.constraints.validity.Violation` as sorted id/label
    pairs (deterministic across processes — sets have no wire order)."""

    constraint: UpdateConstraint
    removed: tuple[tuple[int, str], ...]
    inserted: tuple[tuple[int, str], ...]

    @staticmethod
    def of(violation: Violation) -> "WireViolation":
        return WireViolation(
            constraint=violation.constraint,
            removed=tuple(sorted((n.nid, n.label) for n in violation.removed)),
            inserted=tuple(sorted((n.nid, n.label) for n in violation.inserted)))

    def to_dict(self) -> dict:
        return {"constraint": constraint_to_wire(self.constraint),
                "removed": [list(pair) for pair in self.removed],
                "inserted": [list(pair) for pair in self.inserted]}

    @classmethod
    def from_dict(cls, data: dict) -> "WireViolation":
        return cls(constraint=constraint_from_wire(data["constraint"]),
                   removed=tuple((int(n), lab) for n, lab in data["removed"]),
                   inserted=tuple((int(n), lab) for n, lab in data["inserted"]))


@dataclass(frozen=True)
class WireDecision:
    """One enforcement decision, flattened for the wire.

    ``independent`` mirrors the engine's zero-work-fast-path witness
    (:attr:`~repro.stream.log.Decision.independent`); it travels only
    when set, so non-fast-path decision streams keep their exact wire
    shape (and checksums) from before the analyzer existed.
    """

    seq: int
    op: StreamOp
    accepted: bool
    pending: bool = False
    txn: int | None = None
    note: str = ""
    violations: tuple[WireViolation, ...] = ()
    independent: bool = False

    @staticmethod
    def of(decision: Decision) -> "WireDecision":
        return WireDecision(
            seq=decision.seq, op=decision.op, accepted=decision.accepted,
            pending=decision.pending, txn=decision.txn, note=decision.note,
            violations=tuple(WireViolation.of(v) for v in decision.violations),
            independent=decision.independent)

    def to_dict(self) -> dict:
        data = {"seq": self.seq, "op": op_to_dict(self.op),
                "accepted": self.accepted, "pending": self.pending,
                "txn": self.txn, "note": self.note,
                "violations": [v.to_dict() for v in self.violations]}
        if self.independent:
            data["independent"] = True
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "WireDecision":
        return cls(seq=int(data["seq"]), op=op_from_dict(data["op"]),
                   accepted=bool(data["accepted"]),
                   pending=bool(data.get("pending", False)),
                   txn=data.get("txn"), note=data.get("note", ""),
                   violations=tuple(WireViolation.from_dict(v)
                                    for v in data.get("violations", ())),
                   independent=bool(data.get("independent", False)))


@dataclass(frozen=True)
class StreamDecisions(Response):
    """One decision per submitted log entry, in submission order."""

    kind = "decisions"

    decisions: tuple[WireDecision, ...]

    @property
    def accepted_count(self) -> int:
        return sum(1 for d in self.decisions if d.accepted and not d.pending)

    @property
    def rejected_count(self) -> int:
        return sum(1 for d in self.decisions if not d.accepted and not d.pending)

    @property
    def independent_count(self) -> int:
        """Decisions taken on the analyzer's zero-work fast path."""
        return sum(1 for d in self.decisions if d.independent)

    def to_dict(self) -> dict:
        return {"response": self.kind,
                "decisions": [d.to_dict() for d in self.decisions]}

    @classmethod
    def from_dict(cls, data: dict) -> "StreamDecisions":
        return cls(decisions=tuple(WireDecision.from_dict(d)
                                   for d in data["decisions"]))


@dataclass(frozen=True)
class WireEpoch:
    """One fleet epoch's outcome, flattened for the wire.

    Documents travel by name, name-sorted wherever sets would otherwise
    leak process-dependent order; ``structural`` pairs a document with
    the structural-error note that rejected its whole epoch.
    """

    epoch: int
    edited: tuple[str, ...]
    rejected: tuple[str, ...]
    structural: tuple[tuple[str, str], ...] = ()
    violations: tuple[tuple[str, tuple[WireViolation, ...]], ...] = ()

    @staticmethod
    def of(report, names: "tuple[str, ...]") -> "WireEpoch":
        """Flatten a :class:`~repro.masks.fleet.EpochReport` (document
        positions become the fleet's registered names)."""
        return WireEpoch(
            epoch=report.epoch,
            edited=tuple(names[d] for d in report.edited),
            rejected=tuple(names[d] for d in report.rejected),
            structural=tuple(sorted(
                (names[d], note) for d, note in report.structural.items())),
            violations=tuple(sorted(
                (names[d], tuple(WireViolation.of(v) for v in vs))
                for d, vs in report.violations.items())))

    @property
    def accepted(self) -> tuple[str, ...]:
        bad = set(self.rejected)
        return tuple(doc for doc in self.edited if doc not in bad)

    def to_dict(self) -> dict:
        data = {"epoch": self.epoch, "edited": list(self.edited),
                "rejected": list(self.rejected)}
        if self.structural:
            data["structural"] = [list(pair) for pair in self.structural]
        if self.violations:
            data["violations"] = [
                [doc, [v.to_dict() for v in vs]] for doc, vs in self.violations]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "WireEpoch":
        return cls(
            epoch=int(data["epoch"]),
            edited=tuple(data["edited"]),
            rejected=tuple(data["rejected"]),
            structural=tuple((doc, note)
                             for doc, note in data.get("structural", ())),
            violations=tuple(
                (doc, tuple(WireViolation.from_dict(v) for v in vs))
                for doc, vs in data.get("violations", ())))


@dataclass(frozen=True)
class FleetDecisions(Response):
    """One :class:`WireEpoch` per submitted epoch, in submission order.

    ``checksum`` is the fleet session's running decision checksum after
    this submission — identical across mask backends and machines for
    the same fleet and traffic, which is what the CI backend matrix
    compares.
    """

    kind = "fleet-decisions"

    docs: int
    epochs: tuple[WireEpoch, ...]
    checksum: int

    @property
    def accepted_count(self) -> int:
        return sum(len(e.accepted) for e in self.epochs)

    @property
    def rejected_count(self) -> int:
        return sum(len(e.rejected) for e in self.epochs)

    def to_dict(self) -> dict:
        return {"response": self.kind, "docs": self.docs,
                "epochs": [e.to_dict() for e in self.epochs],
                "checksum": self.checksum}

    @classmethod
    def from_dict(cls, data: dict) -> "FleetDecisions":
        return cls(docs=int(data["docs"]),
                   epochs=tuple(WireEpoch.from_dict(e)
                                for e in data["epochs"]),
                   checksum=int(data["checksum"]))


@dataclass(frozen=True)
class MetricsSnapshot(Response):
    """One point-in-time view of the serving process's metrics.

    ``metrics`` is a :meth:`~repro.obs.MetricsRegistry.to_dict` snapshot
    (``counters`` / ``gauges`` / ``histograms`` sections under flat
    ``name{label="value"}`` keys); ``streams`` maps each document with a
    live enforcement stream to its :class:`~repro.stream.engine.
    StreamStats` wire pairs, and ``fleets`` maps each live fleet (by its
    sorted, comma-joined member list) to backend/epoch/size.  Values are
    a live read, not a transaction — two counters in one snapshot may
    straddle an in-flight request.
    """

    kind = "metrics-snapshot"

    metrics: dict[str, Any]
    streams: tuple[tuple[str, tuple[tuple[str, int], ...]], ...] = ()
    fleets: tuple[tuple[str, tuple[tuple[str, Any], ...]], ...] = ()

    @property
    def counters(self) -> dict[str, float]:
        return dict(self.metrics.get("counters", {}))

    @property
    def gauges(self) -> dict[str, float]:
        return dict(self.metrics.get("gauges", {}))

    @property
    def histograms(self) -> dict[str, dict]:
        return dict(self.metrics.get("histograms", {}))

    def histogram_count(self, name: str) -> int:
        """Observation count of one histogram (0 when absent)."""
        return int(self.histograms.get(name, {}).get("count", 0))

    def stream_counters(self, document: str) -> dict[str, int]:
        """One live stream's durable counters (empty dict when absent)."""
        return {k: v for doc, pairs in self.streams if doc == document
                for k, v in pairs}

    def to_dict(self) -> dict:
        data: dict[str, Any] = {"response": self.kind,
                                "metrics": self.metrics}
        if self.streams:
            data["streams"] = {doc: {k: v for k, v in pairs}
                               for doc, pairs in self.streams}
        if self.fleets:
            data["fleets"] = {key: {k: v for k, v in pairs}
                              for key, pairs in self.fleets}
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "MetricsSnapshot":
        return cls(
            metrics=dict(data["metrics"]),
            streams=tuple(sorted(
                (doc, tuple(sorted((str(k), int(v))
                                   for k, v in pairs.items())))
                for doc, pairs in data.get("streams", {}).items())),
            fleets=tuple(sorted(
                (key, tuple(sorted(pairs.items())))
                for key, pairs in data.get("fleets", {}).items())))


@dataclass(frozen=True)
class ErrorResponse(Response):
    """A request that could not be served (``error`` = exception class)."""

    kind = "error"
    ok = False

    error: str
    message: str
    details: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        data = {"response": self.kind, "error": self.error,
                "message": self.message}
        if self.details:
            data["details"] = dict(self.details)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ErrorResponse":
        return cls(error=data["error"], message=data["message"],
                   details=dict(data.get("details", {})))


_RESPONSE_KINDS: dict[str, type[Response]] = {
    cls.kind: cls
    for cls in (Ack, QueryAnswers, StreamDecisions, FleetDecisions,
                MetricsSnapshot, ErrorResponse)
}


def response_from_dict(data: dict) -> Response:
    """Rebuild any response from its wire dict (inverse of ``to_dict``)."""
    try:
        kind = data["response"]
    except (TypeError, KeyError):
        raise ServiceError(f"malformed response payload {data!r}: "
                           "missing 'response' kind") from None
    cls = _RESPONSE_KINDS.get(kind) if isinstance(kind, str) else None
    if cls is None:
        raise ServiceError(f"unknown response kind {kind!r}; expected one of "
                           f"{sorted(_RESPONSE_KINDS)}")
    try:
        return cls.from_dict(data)
    except (KeyError, TypeError, ValueError) as exc:
        raise ServiceError(f"malformed {kind!r} response: {exc}") from None


def response_from_json(payload: str) -> Response:
    return response_from_dict(json.loads(payload))


def response_checksum(response: Response) -> int:
    """CRC of the canonical JSON wire form — one integer per response.

    Folding a whole answer stream (``fold = fold * P + checksum``) lets
    two executors' behaviour be compared wholesale; the equivalence suite
    and the service benchmark both gate on it.
    """
    return zlib.crc32(response.to_json().encode())


__all__ = [
    "PROTOCOL_VERSION",
    "Request", "RegisterConstraints", "RegisterDocument",
    "RegisterTemplate", "CertifiedSubmit",
    "ImplicationQuery", "InstanceQuery", "StreamSubmit", "StreamStatus",
    "FleetSubmit", "MetricsRequest",
    "Response", "Ack", "Verdict", "QueryAnswers",
    "WireViolation", "WireDecision", "StreamDecisions", "ErrorResponse",
    "WireEpoch", "FleetDecisions", "MetricsSnapshot",
    "request_from_dict", "request_from_json",
    "response_from_dict", "response_from_json", "response_checksum",
    "constraint_to_wire", "constraint_from_wire",
]

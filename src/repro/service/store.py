"""Named documents and named compiled constraint sets.

A :class:`DocumentStore` is the server-side state of a
:class:`~repro.service.service.ConstraintService`: clients register a
document or a constraint set **once** under a name, and every later
request refers to the name.  The store owns the expensive artifacts that
registration makes shareable —

* one compiled :class:`~repro.api.session.Reasoner` per constraint set
  (canonical forms, per-type views, fragment dispatch, linear DFAs,
  session memo), built lazily on first query and reused by every request
  naming the set;
* one live :class:`~repro.stream.engine.StreamEnforcer` per document
  under enforcement (the stream *adopts* the stored document: update
  logs mutate it in place, and instance queries against the name see the
  current state);
* one :class:`~repro.api.session.BoundReasoner` per ``(set, document)``
  pair, keyed by the document's mutation version, so repeated instance
  queries between edits reuse the snapshot and the per-tree answer sets.

Names are flat strings; re-registering a taken name raises
:class:`~repro.errors.ServiceError` unless ``replace=True`` (replacement
drops the dependent session/stream/binding artifacts).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.api.session import BoundReasoner, Reasoner
from repro.constraints.model import ConstraintSet, constraint_set
from repro.errors import ServiceError
from repro.service.dispatch import bind_session, compiled_session
from repro.stream.engine import StreamEnforcer
from repro.trees.serialize import from_dict
from repro.trees.tree import DataTree


class DocumentStore:
    """The named-object registry behind a constraint service."""

    __slots__ = ("_documents", "_sets", "_sessions", "_enforcers", "_bindings")

    def __init__(self) -> None:
        self._documents: dict[str, DataTree] = {}
        self._sets: dict[str, ConstraintSet] = {}
        self._sessions: dict[str, Reasoner] = {}
        # doc name -> (set name, enforcer): one live stream per document.
        self._enforcers: dict[str, tuple[str, StreamEnforcer]] = {}
        # (set name, doc name) -> (tree version, binding)
        self._bindings: dict[tuple[str, str], tuple[int, BoundReasoner]] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def add_document(self, name: str, tree: DataTree | dict, *,
                     replace: bool = False) -> DataTree:
        """Adopt ``tree`` (live or in nested-dict wire form) under ``name``."""
        if isinstance(tree, dict):
            tree = from_dict(tree)
        if name in self._documents and not replace:
            raise ServiceError(f"document {name!r} is already registered "
                               "(pass replace=True to swap it)")
        self._documents[name] = tree
        self._enforcers.pop(name, None)
        self._drop_bindings(document=name)
        return tree

    def add_constraints(self, name: str,
                        constraints: ConstraintSet | Iterable, *,
                        replace: bool = False) -> ConstraintSet:
        """Register a constraint set (any :func:`constraint_set` spec form)."""
        if not isinstance(constraints, ConstraintSet):
            constraints = constraint_set(*constraints)
        constraints.require_concrete()
        if name in self._sets and not replace:
            raise ServiceError(f"constraint set {name!r} is already registered "
                               "(pass replace=True to swap it)")
        self._sets[name] = constraints
        self._sessions.pop(name, None)
        self._drop_bindings(constraints=name)
        # Live streams enforcing the replaced set froze its old baseline;
        # drop them so the next submission reopens under the new policy.
        for doc in [d for d, (bound_set, _) in self._enforcers.items()
                    if bound_set == name]:
            del self._enforcers[doc]
        return constraints

    def _drop_bindings(self, document: str | None = None,
                       constraints: str | None = None) -> None:
        for key in [k for k in self._bindings
                    if k[0] == constraints or k[1] == document]:
            del self._bindings[key]

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def document(self, name: str) -> DataTree:
        try:
            return self._documents[name]
        except KeyError:
            raise ServiceError(f"unknown document {name!r}; registered: "
                               f"{sorted(self._documents)}") from None

    def constraints(self, name: str) -> ConstraintSet:
        try:
            return self._sets[name]
        except KeyError:
            raise ServiceError(f"unknown constraint set {name!r}; registered: "
                               f"{sorted(self._sets)}") from None

    def documents(self) -> list[str]:
        return sorted(self._documents)

    def constraint_sets(self) -> list[str]:
        return sorted(self._sets)

    # ------------------------------------------------------------------
    # Compiled artifacts (lazy, shared across requests)
    # ------------------------------------------------------------------
    def session(self, name: str) -> Reasoner:
        """The compiled session for a registered set (built on first use)."""
        session = self._sessions.get(name)
        if session is None:
            session = compiled_session(self.constraints(name))
            self._sessions[name] = session
        return session

    def binding(self, set_name: str, doc_name: str) -> BoundReasoner:
        """A bound session on the document's *current* state.

        Cached per ``(set, document)`` and invalidated by the document's
        mutation version, so instance queries interleaved with stream
        edits always see the live state yet amortise the snapshot between
        edits.
        """
        tree = self.document(doc_name)
        key = (set_name, doc_name)
        cached = self._bindings.get(key)
        if cached is not None and cached[0] == tree.version:
            return cached[1]
        bound = bind_session(self.session(set_name), tree)
        self._bindings[key] = (tree.version, bound)
        return bound

    def enforcer(self, doc_name: str, set_name: str) -> StreamEnforcer:
        """The document's live enforcement stream (opened on first use).

        A document has at most one stream; naming a different policy for
        an already-enforced document is a :class:`ServiceError` (close the
        stream by re-registering the document).
        """
        existing = self._enforcers.get(doc_name)
        if existing is not None:
            bound_set, enforcer = existing
            if bound_set != set_name:
                raise ServiceError(
                    f"document {doc_name!r} is already enforced under "
                    f"constraint set {bound_set!r}; a document has one live "
                    "stream (re-register the document to reset it)")
            return enforcer
        self.constraints(set_name)  # validate the name before adopting
        enforcer = self.session(set_name).open_stream(self.document(doc_name))
        self._enforcers[doc_name] = (set_name, enforcer)
        return enforcer

    def __repr__(self) -> str:
        return (f"DocumentStore({len(self._documents)} documents, "
                f"{len(self._sets)} constraint sets, "
                f"{len(self._enforcers)} live streams)")


__all__ = ["DocumentStore"]

"""Named documents and named compiled constraint sets.

A :class:`DocumentStore` is the server-side state of a
:class:`~repro.service.service.ConstraintService`: clients register a
document or a constraint set **once** under a name, and every later
request refers to the name.  The store owns the expensive artifacts that
registration makes shareable —

* one compiled :class:`~repro.api.session.Reasoner` per constraint set
  (canonical forms, per-type views, fragment dispatch, linear DFAs,
  session memo), built lazily on first query and reused by every request
  naming the set;
* one live :class:`~repro.stream.engine.StreamEnforcer` per document
  under enforcement (the stream *adopts* the stored document: update
  logs mutate it in place, and instance queries against the name see the
  current state);
* one :class:`~repro.api.session.BoundReasoner` per ``(set, document)``
  pair, keyed by the document's mutation version, so repeated instance
  queries between edits reuse the snapshot and the per-tree answer sets.

Names are flat strings; re-registering a taken name raises
:class:`~repro.errors.ServiceError` unless ``replace=True`` (replacement
drops the dependent session/stream/binding artifacts).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.api.session import BoundReasoner, Reasoner
from repro.certify import CertifyOutcome, UpdateTemplate, certify
from repro.constraints.model import ConstraintSet, constraint_set
from repro.errors import ServiceError
from repro.masks.fleet import FleetEvaluator
from repro.service.dispatch import bind_session, compiled_session
from repro.stream.engine import StreamEnforcer
from repro.trees.serialize import from_dict
from repro.trees.tree import DataTree


class DocumentStore:
    """The named-object registry behind a constraint service."""

    __slots__ = ("_documents", "_sets", "_sessions", "_enforcers", "_bindings",
                 "_fleets", "_templates", "_journal")

    def __init__(self) -> None:
        self._documents: dict[str, DataTree] = {}
        self._sets: dict[str, ConstraintSet] = {}
        self._sessions: dict[str, Reasoner] = {}
        # doc name -> (set name, enforcer): one live stream per document.
        self._enforcers: dict[str, tuple[str, StreamEnforcer]] = {}
        # template name -> (set name, template, certify outcome).  Only
        # *certified* templates are stored; rejected/unknown ones never
        # enter the registry (the hot path trusts every entry here).
        self._templates: dict[
            str, tuple[str, UpdateTemplate, CertifyOutcome]] = {}
        # (set name, doc name) -> (tree version, binding)
        self._bindings: dict[tuple[str, str], tuple[int, BoundReasoner]] = {}
        # (doc names, set name) -> fleet session: a document belongs to at
        # most one live fleet, and never to a fleet and a stream at once.
        self._fleets: dict[tuple[tuple[str, ...], str], FleetEvaluator] = {}
        self._journal = None  # optional ServerJournal (repro.server)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def add_document(self, name: str, tree: DataTree | dict, *,
                     replace: bool = False) -> DataTree:
        """Adopt ``tree`` (live or in nested-dict wire form) under ``name``."""
        if isinstance(tree, dict):
            tree = from_dict(tree)
        if name in self._documents and not replace:
            raise ServiceError(f"document {name!r} is already registered "
                               "(pass replace=True to swap it)")
        self._documents[name] = tree
        self._enforcers.pop(name, None)
        self._drop_fleets(document=name)
        self._drop_bindings(document=name)
        if self._journal is not None:
            self._journal.document_registered(name, tree, replace)
        return tree

    def add_constraints(self, name: str,
                        constraints: ConstraintSet | Iterable, *,
                        replace: bool = False) -> ConstraintSet:
        """Register a constraint set (any :func:`constraint_set` spec form)."""
        if not isinstance(constraints, ConstraintSet):
            constraints = constraint_set(*constraints)
        constraints.require_concrete()
        if name in self._sets and not replace:
            raise ServiceError(f"constraint set {name!r} is already registered "
                               "(pass replace=True to swap it)")
        self._sets[name] = constraints
        self._sessions.pop(name, None)
        self._drop_bindings(constraints=name)
        # Live streams enforcing the replaced set froze its old baseline;
        # drop them so the next submission reopens under the new policy.
        for doc in [d for d, (bound_set, _) in self._enforcers.items()
                    if bound_set == name]:
            del self._enforcers[doc]
        self._drop_fleets(constraints=name)
        # Certificates are statements about the replaced set; drop them.
        for tpl in [t for t, (bound_set, _, _) in self._templates.items()
                    if bound_set == name]:
            del self._templates[tpl]
        if self._journal is not None:
            self._journal.constraints_registered(name, constraints, replace)
        return constraints

    def add_template(self, name: str, template: UpdateTemplate,
                     set_name: str, *,
                     replace: bool = False) -> CertifyOutcome:
        """Certify ``template`` against a registered set; store iff certified.

        Always returns the :class:`~repro.certify.CertifyOutcome` — the
        caller decides how to surface a rejection (the executor ships the
        verdict and search accounting in ``Ack.stats``; the counterexample
        object stays server-side).  Certified templates are journaled in
        ``sets.journal``; recovery replays the record through this same
        path (:func:`~repro.certify.certify` is deterministic, so the
        stored verdict reproduces bit-for-bit).
        """
        constraints = self.constraints(set_name)
        if name in self._templates and not replace:
            raise ServiceError(f"template {name!r} is already registered "
                               "(pass replace=True to swap it)")
        outcome = certify(template, constraints)
        if outcome.certified:
            self._templates[name] = (set_name, template, outcome)
            # Recovery replays into a store with no journal attached, so
            # this write-through never re-journals its own replay.
            if self._journal is not None:
                self._journal.template_registered(name, template, set_name,
                                                  replace)
        return outcome

    def template(self, name: str, set_name: str
                 ) -> tuple[UpdateTemplate, CertifyOutcome]:
        """A certified template, checked against the submission's set."""
        try:
            bound_set, template, outcome = self._templates[name]
        except KeyError:
            raise ServiceError(
                f"unknown certified template {name!r}; registered: "
                f"{sorted(self._templates)}") from None
        if bound_set != set_name:
            raise ServiceError(
                f"template {name!r} is certified against constraint set "
                f"{bound_set!r}, not {set_name!r}")
        return template, outcome

    def templates(self) -> list[str]:
        return sorted(self._templates)

    def _drop_bindings(self, document: str | None = None,
                       constraints: str | None = None) -> None:
        for key in [k for k in self._bindings
                    if k[0] == constraints or k[1] == document]:
            del self._bindings[key]

    def _drop_fleets(self, document: str | None = None,
                     constraints: str | None = None) -> None:
        for key in [k for k in self._fleets
                    if k[1] == constraints or document in k[0]]:
            del self._fleets[key]

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def document(self, name: str) -> DataTree:
        try:
            return self._documents[name]
        except KeyError:
            raise ServiceError(f"unknown document {name!r}; registered: "
                               f"{sorted(self._documents)}") from None

    def constraints(self, name: str) -> ConstraintSet:
        try:
            return self._sets[name]
        except KeyError:
            raise ServiceError(f"unknown constraint set {name!r}; registered: "
                               f"{sorted(self._sets)}") from None

    def documents(self) -> list[str]:
        return sorted(self._documents)

    def constraint_sets(self) -> list[str]:
        return sorted(self._sets)

    # ------------------------------------------------------------------
    # Compiled artifacts (lazy, shared across requests)
    # ------------------------------------------------------------------
    def session(self, name: str) -> Reasoner:
        """The compiled session for a registered set (built on first use)."""
        session = self._sessions.get(name)
        if session is None:
            session = compiled_session(self.constraints(name))
            self._sessions[name] = session
        return session

    def binding(self, set_name: str, doc_name: str) -> BoundReasoner:
        """A bound session on the document's *current* state.

        Cached per ``(set, document)`` and invalidated by the document's
        mutation version, so instance queries interleaved with stream
        edits always see the live state yet amortise the snapshot between
        edits.
        """
        tree = self.document(doc_name)
        key = (set_name, doc_name)
        cached = self._bindings.get(key)
        if cached is not None and cached[0] == tree.version:
            return cached[1]
        bound = bind_session(self.session(set_name), tree)
        self._bindings[key] = (tree.version, bound)
        return bound

    def enforcer(self, doc_name: str, set_name: str) -> StreamEnforcer:
        """The document's live enforcement stream (opened on first use).

        A document has at most one stream; naming a different policy for
        an already-enforced document is a :class:`ServiceError` (close the
        stream by re-registering the document).
        """
        existing = self._enforcers.get(doc_name)
        if existing is not None:
            bound_set, enforcer = existing
            if bound_set != set_name:
                raise ServiceError(
                    f"document {doc_name!r} is already enforced under "
                    f"constraint set {bound_set!r}; a document has one live "
                    "stream (re-register the document to reset it)")
            return enforcer
        fleet = self.fleet_of(doc_name)
        if fleet is not None:
            raise ServiceError(
                f"document {doc_name!r} is in a live fleet under constraint "
                f"set {fleet[1]!r}; it cannot also open a stream "
                "(re-register the document to reset it)")
        self.constraints(set_name)  # validate the name before adopting
        enforcer = self.session(set_name).open_stream(self.document(doc_name))
        self._enforcers[doc_name] = (set_name, enforcer)
        return enforcer

    def fleet_of(self, doc_name: str) -> tuple[tuple[str, ...], str] | None:
        """The ``(documents, set)`` key of the live fleet holding a
        document, if any."""
        for key in self._fleets:
            if doc_name in key[0]:
                return key
        return None

    def fleet_session(self, doc_names: Iterable[str], set_name: str,
                      backend: str | None = None) -> FleetEvaluator:
        """The fleet session over ``doc_names`` under ``set_name``.

        Opened on first use — the named documents are *adopted* by the
        fleet evaluator, exactly like handing each to a stream enforcer —
        and reused by later submissions naming the same ``(documents,
        set)`` pair.  A document belongs to at most one live fleet and
        never to a fleet and a stream at once; ``backend`` must agree
        with a continuing session's backend (pass ``None`` to accept it).
        """
        docs = tuple(doc_names)
        if not docs:
            raise ServiceError("a fleet submission names at least one "
                               "document")
        if len(set(docs)) != len(docs):
            raise ServiceError(f"duplicate document names in fleet {docs!r}")
        key = (docs, set_name)
        existing_fleet = self._fleets.get(key)
        if existing_fleet is not None:
            if backend is not None and existing_fleet.backend != backend:
                raise ServiceError(
                    f"fleet over {list(docs)} is live on the "
                    f"{existing_fleet.backend!r} backend; it cannot switch "
                    f"to {backend!r} (re-register a document to reset it)")
            return existing_fleet
        constraints = self.constraints(set_name)
        trees = []
        for doc in docs:
            if doc in self._enforcers:
                raise ServiceError(
                    f"document {doc!r} has a live enforcement stream; it "
                    "cannot join a fleet (re-register the document to "
                    "reset it)")
            other = self.fleet_of(doc)
            if other is not None:
                raise ServiceError(
                    f"document {doc!r} is already in a live fleet under "
                    f"constraint set {other[1]!r} (re-register the document "
                    "to reset it)")
            trees.append(self.document(doc))
        fleet = FleetEvaluator(constraints, trees, backend=backend,
                               names=docs)
        self._fleets[key] = fleet
        return fleet

    def live_fleets(self) -> list[tuple[tuple[str, ...], str, FleetEvaluator]]:
        """Every open fleet as ``(documents, set, evaluator)``, key-sorted."""
        return [(docs, set_name, fleet)
                for (docs, set_name), fleet in sorted(self._fleets.items())]

    # ------------------------------------------------------------------
    # Durability (optional journal; see :mod:`repro.server.journal`)
    # ------------------------------------------------------------------
    @property
    def journal(self):
        """The attached :class:`~repro.server.journal.ServerJournal`, if any."""
        return self._journal

    def attach_journal(self, journal) -> None:
        """Record every later mutation of this store in ``journal``.

        Attach *after* :meth:`~repro.server.journal.ServerJournal.recover`
        has rebuilt the store — an attached journal writes through on
        every registration and submission, so recovering into an attached
        store would journal its own replay.
        """
        self._journal = journal

    def prepare_stream_ops(self, doc_name: str, ops):
        """Pin fresh-leaf ids at the durable boundary (no-op without a
        journal): the ops actually applied — and journaled — carry
        explicit ids, so a recovered process replays to identical trees."""
        if self._journal is None:
            return tuple(ops)
        return self._journal.prepare_ops(doc_name, tuple(ops))

    def commit_stream_ops(self, doc_name: str, set_name: str, ops,
                          enforcer: StreamEnforcer) -> None:
        """Journal (and fsync) the applied prefix of a submission."""
        if self._journal is not None and ops:
            self._journal.stream_submitted(doc_name, set_name,
                                           tuple(ops), enforcer)

    def commit_certified(self, doc_name: str, set_name: str,
                         template_name: str, bindings, ops,
                         enforcer: StreamEnforcer) -> None:
        """Journal (and fsync) one applied certified submission."""
        if self._journal is not None:
            self._journal.certified_submitted(doc_name, set_name,
                                              template_name, dict(bindings),
                                              tuple(ops), enforcer)

    def adopt_stream(self, doc_name: str, set_name: str,
                     enforcer: StreamEnforcer) -> None:
        """Install a recovered enforcement stream (checkpoint restore).

        The stream's tree *becomes* the stored document — exactly the
        adoption relationship :meth:`enforcer` establishes on first use —
        and any stale bindings on the old tree are dropped.
        """
        self.constraints(set_name)  # validate before adopting
        self._documents[doc_name] = enforcer.tree
        self._enforcers[doc_name] = (set_name, enforcer)
        self._drop_bindings(document=doc_name)

    def live_stream(self, doc_name: str) -> tuple[str, StreamEnforcer] | None:
        """``(set name, enforcer)`` if the document has an open stream."""
        return self._enforcers.get(doc_name)

    def live_streams(self) -> list[tuple[str, str, StreamEnforcer]]:
        """Every open stream as ``(document, set, enforcer)``, name-sorted."""
        return [(doc, bound_set, enforcer)
                for doc, (bound_set, enforcer) in sorted(self._enforcers.items())]

    def __repr__(self) -> str:
        return (f"DocumentStore({len(self._documents)} documents, "
                f"{len(self._sets)} constraint sets, "
                f"{len(self._enforcers)} live streams)")


__all__ = ["DocumentStore"]

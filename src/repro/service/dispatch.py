"""The one dispatch layer under every entry point of the system.

Historically the library grew three parallel front doors — the legacy
free functions, the compiled session API and the enforcement stream.
Each already funnelled into :class:`~repro.api.session.Reasoner`'s Table 1
/ Table 2 dispatch; this module makes the funnel explicit: the session
methods (``Reasoner.bind`` / ``Reasoner.open_stream``), the legacy free
functions (:func:`repro.implication.general.implies`,
:func:`repro.instance.general.implies_on`) and the service executors all
route through the helpers below, so a change to how sessions are built,
bound or streamed happens in exactly one place.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.api.session import BoundReasoner, Reasoner
from repro.constraints.model import ConstraintSet, UpdateConstraint
from repro.implication.result import ImplicationResult
from repro.stream.engine import StreamEnforcer
from repro.trees.tree import DataTree


def compiled_session(constraints: ConstraintSet | Iterable[UpdateConstraint],
                     ) -> Reasoner:
    """A fully compiled, memoising session — the service's unit of pooling."""
    return Reasoner(constraints)


def transient_session(constraints: ConstraintSet | Iterable[UpdateConstraint],
                      ) -> Reasoner:
    """A cache-free, lazily compiled session: one query costs exactly what
    the legacy free functions always did."""
    return Reasoner(constraints, memo_size=0, precompile=False)


def bind_session(reasoner: Reasoner, current: DataTree, *,
                 indexed: bool = True, engine: str | None = None,
                 ) -> BoundReasoner:
    """Fix a current instance for a session (the Table 2 entry point)."""
    return BoundReasoner(reasoner, current, indexed=indexed, engine=engine)


def open_enforcer(constraints: ConstraintSet | Iterable[UpdateConstraint],
                  tree: DataTree, *, engine: str = "bitset") -> StreamEnforcer:
    """Open an online enforcement stream (adopts ``tree``)."""
    return StreamEnforcer(constraints, tree, engine=engine)


def one_shot_implies(premises: ConstraintSet | Iterable[UpdateConstraint],
                     conclusion: UpdateConstraint,
                     require_decision: bool = False) -> ImplicationResult:
    """The legacy ``implies(C, c)`` semantics: transient session, one query."""
    return transient_session(premises).implies(
        conclusion, require_decision=require_decision)


def one_shot_implies_on(premises: ConstraintSet | Iterable[UpdateConstraint],
                        current: DataTree, conclusion: UpdateConstraint, *,
                        require_decision: bool = False, max_moves: int = 2,
                        search_budget: int = 5000, indexed: bool = False,
                        engine: str | None = None) -> ImplicationResult:
    """The legacy ``implies_on(C, J, c)`` semantics, one binding, one query."""
    session = transient_session(premises)
    bound = bind_session(session, current, indexed=indexed, engine=engine)
    return bound.implies_on(conclusion, require_decision=require_decision,
                            max_moves=max_moves, search_budget=search_budget)


__all__ = [
    "compiled_session", "transient_session", "bind_session", "open_enforcer",
    "one_shot_implies", "one_shot_implies_on",
]

"""The ``asyncio`` front end: awaitable decisions, per-document ordering.

The ROADMAP's enforcement-log IO front end: concurrent clients submit
requests from coroutines and ``await`` their responses, while the service
guarantees exactly the ordering that matters — requests naming the same
document are applied **in submission order** (each document has its own
queue drained by its own worker task), and requests for different
documents interleave freely.  Document-independent requests (constraint
registration, pure implication queries) flow through a shared control
queue.

The façade adds no semantics: every request is served by the underlying
:class:`~repro.service.service.ConstraintService` (and thus by whichever
executor it holds), so answer streams are bit-identical to synchronous
calls — the equivalence suite compares response checksums.  Single-client
overhead is one queue hop and one future per request; the service
benchmark pins it within a few percent of direct
:meth:`~repro.stream.engine.StreamEnforcer.apply` calls.

>>> import asyncio
>>> from repro import AsyncService, DataTree
>>> from repro.stream import AddLeaf
>>> async def main():
...     async with AsyncService() as svc:
...         doc = DataTree()
...         patient = doc.add_child(doc.root, "patient")
...         await svc.register_constraints("policy", [("/patient", "down")])
...         await svc.register_document("ward", doc)
...         reply = await svc.enforce("ward", "policy",
...                                   [AddLeaf(patient, "visit")])
...         return [d.accepted for d in reply.decisions]
>>> asyncio.run(main())
[True]
"""

from __future__ import annotations

import asyncio
from collections.abc import Iterable, Sequence

from repro.constraints.model import ConstraintSet, UpdateConstraint
from repro.errors import ServiceError
from repro.obs import registry as _obs_registry, trace_id, tracing
from repro.service.executors import Executor
from repro.service.protocol import (
    Ack,
    CertifiedSubmit,
    ImplicationQuery,
    InstanceQuery,
    RegisterConstraints,
    RegisterDocument,
    Request,
    Response,
    StreamDecisions,
    StreamStatus,
    StreamSubmit,
    WireDecision,
)
from repro.service.service import ConstraintService
from repro.stream.ops import StreamOp
from repro.trees.tree import DataTree

#: Queue key for document-independent requests.
_CONTROL = None


def _route_key(request: Request) -> str | None:
    """The serialisation domain of a request: its document, or control."""
    if isinstance(request, (RegisterDocument,)):
        return request.name
    if isinstance(request, (InstanceQuery, StreamSubmit, StreamStatus,
                            CertifiedSubmit)):
        return request.document
    return _CONTROL


class AsyncService:
    """Awaitable façade over a (synchronous) :class:`ConstraintService`."""

    def __init__(self, service: ConstraintService | None = None, *,
                 executor: Executor | None = None):
        self._service = (service if service is not None
                         else ConstraintService(executor=executor))
        self._queues: dict[str | None, asyncio.Queue] = {}
        self._workers: dict[str | None, asyncio.Task] = {}
        # The future of the most recently submitted *registration*: every
        # later request (any queue) waits for it before executing, so a
        # pipelined sequence can never observe a store state older than
        # its submission order implies — cross-queue dependencies resolve
        # exactly as in a synchronous replay.
        self._barrier: asyncio.Future | None = None
        self._closed = False
        m = _obs_registry()
        self._m_requests = m.counter("service.requests_total")
        self._m_depth = m.gauge("service.queue_depth")

    @property
    def service(self) -> ConstraintService:
        return self._service

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def __aenter__(self) -> "AsyncService":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def close(self) -> None:
        """Drain every queue, stop the workers, close the executor."""
        self._closed = True
        for queue in self._queues.values():
            queue.put_nowait(None)
        for task in self._workers.values():
            await task
        self._queues.clear()
        self._workers.clear()
        self._service.close()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, request: Request) -> "asyncio.Future[Response]":
        """Enqueue one request; the returned future resolves to its response.

        Ordering guarantee: two requests routed to the same document
        resolve in submission order.  ``submit`` is synchronous (the
        enqueue itself never blocks), so a client can pipeline a whole
        log and ``await asyncio.gather(*futures)``.
        """
        if self._closed:
            raise ServiceError("the async service is closed")
        future: asyncio.Future[Response] = (
            asyncio.get_running_loop().create_future())
        barrier = self._barrier
        if barrier is not None and barrier.done():
            barrier = None
        # Capture the submitter's trace id here: worker tasks were created
        # in their own context, so a contextvar set around ``submit`` would
        # never reach ``_drain`` — the id must ride the queue item.
        self._queue_for(_route_key(request)).put_nowait(
            (request, future, barrier, trace_id()))
        self._m_requests.inc()
        self._m_depth.set(sum(q.qsize() for q in self._queues.values()))
        if isinstance(request, (RegisterConstraints, RegisterDocument)):
            self._barrier = future
        return future

    async def request(self, request: Request) -> Response:
        """Submit and await one request."""
        return await self.submit(request)

    def _queue_for(self, key: str | None) -> asyncio.Queue:
        queue = self._queues.get(key)
        if queue is None:
            queue = self._queues[key] = asyncio.Queue()
            self._workers[key] = asyncio.get_running_loop().create_task(
                self._drain(queue))
        return queue

    #: Requests a worker serves back-to-back before yielding the loop.
    FAIRNESS_STRIDE = 16

    async def _drain(self, queue: asyncio.Queue) -> None:
        """One document's worker: strictly serial, never raises."""
        served = 0
        while True:
            item = await queue.get()
            if item is None:
                queue.task_done()
                return
            request, future, barrier, trace = item
            if barrier is not None and not barrier.done():
                # An earlier-submitted registration has not executed yet
                # (it lives in a sibling queue); wait for it so this
                # request sees at least the store state its submission
                # order promised.  Registration failures do not block —
                # a synchronous replay would carry on past them too.
                try:
                    await barrier
                except Exception:
                    pass
            try:
                with tracing(trace):
                    response = self._service.handle(request)
            except Exception as err:  # handle() already absorbs ReproError
                if not future.cancelled():
                    future.set_exception(err)
            else:
                if not future.cancelled():
                    future.set_result(response)
            queue.task_done()
            self._m_depth.set(sum(q.qsize() for q in self._queues.values()))
            # Yield periodically so sibling documents interleave even under
            # one saturating client; an empty queue suspends in get() anyway,
            # so the stride only matters for long pipelined bursts.
            served += 1
            if served % self.FAIRNESS_STRIDE == 0:
                await asyncio.sleep(0)

    # ------------------------------------------------------------------
    # Conveniences (one protocol request each)
    # ------------------------------------------------------------------
    async def register_document(self, name: str, tree: DataTree, *,
                                replace: bool = False) -> Ack:
        return await self.submit(RegisterDocument(name, tree, replace=replace))

    async def register_constraints(self, name: str,
                                   constraints: ConstraintSet | Iterable, *,
                                   replace: bool = False) -> Ack:
        if not isinstance(constraints, ConstraintSet):
            from repro.constraints.model import constraint_set
            constraints = constraint_set(*constraints)
        return await self.submit(
            RegisterConstraints(name, tuple(constraints), replace=replace))

    async def implies(self, constraints: str,
                      conclusions: Sequence[UpdateConstraint], *,
                      fail_fast: bool = False,
                      require_decision: bool = False) -> Response:
        return await self.submit(ImplicationQuery(
            constraints, tuple(conclusions), fail_fast=fail_fast,
            require_decision=require_decision))

    async def implies_on(self, constraints: str, document: str,
                         conclusions: Sequence[UpdateConstraint], *,
                         fail_fast: bool = False,
                         require_decision: bool = False,
                         max_moves: int = 2,
                         search_budget: int = 5000) -> Response:
        return await self.submit(InstanceQuery(
            constraints, document, tuple(conclusions), fail_fast=fail_fast,
            require_decision=require_decision, max_moves=max_moves,
            search_budget=search_budget))

    async def enforce(self, document: str, constraints: str,
                      ops: Sequence[StreamOp]) -> Response:
        """Submit a log slice; resolves to its :class:`StreamDecisions`."""
        return await self.submit(StreamSubmit(document, constraints,
                                              tuple(ops)))

    async def status(self, document: str) -> Response:
        """Where the document's stream stands (ordered after its edits)."""
        return await self.submit(StreamStatus(document))

    async def apply(self, document: str, constraints: str,
                    op: StreamOp) -> WireDecision:
        """Submit one operation; resolves to its single decision."""
        response = await self.enforce(document, constraints, (op,))
        if not isinstance(response, StreamDecisions):
            raise ServiceError(f"{response.to_dict()}")
        return response.decisions[0]

    def __repr__(self) -> str:
        docs = sorted(k for k in self._queues if k is not None)
        return (f"AsyncService({self._service!r}, "
                f"{len(docs)} document queue(s))")


__all__ = ["AsyncService"]

"""Multi-document constraint service with pluggable executors.

The serving layer over everything below it: register named documents and
named constraint sets once, then drive implication queries, instance
queries and live update-stream enforcement through one JSON-serialisable
request/response protocol.

>>> from repro import ConstraintService, DataTree
>>> from repro.stream import AddLeaf, RemoveSubtree
>>> svc = ConstraintService()
>>> doc = DataTree()
>>> patient = doc.add_child(doc.root, "patient")
>>> trial = doc.add_child(patient, "clinicalTrial")
>>> _ = svc.register_constraints("policy",
...                              [("/patient[/clinicalTrial]", "up")])
>>> _ = svc.register_document("ward", doc)
>>> stream = svc.enforcer("ward", "policy")
>>> stream.apply(AddLeaf(patient, "visit")).accepted
True
>>> stream.apply(RemoveSubtree(trial)).accepted
False

Components: :mod:`~repro.service.protocol` (the wire-level request and
response dataclasses, ``to_dict``/``from_dict`` round-trippable),
:mod:`~repro.service.store` (:class:`DocumentStore`),
:mod:`~repro.service.executors` (:class:`InlineExecutor`,
:class:`ProcessExecutor`), :mod:`~repro.service.async_service`
(:class:`AsyncService`, the ``asyncio`` front end with per-document
ordering) and :mod:`~repro.service.dispatch` (the single dispatch layer
the session API and the legacy free functions also route through).
"""

from repro.service.async_service import AsyncService
from repro.service.executors import Executor, InlineExecutor, ProcessExecutor
from repro.service.protocol import (
    Ack,
    CertifiedSubmit,
    ErrorResponse,
    FleetDecisions,
    FleetSubmit,
    ImplicationQuery,
    InstanceQuery,
    MetricsRequest,
    MetricsSnapshot,
    QueryAnswers,
    RegisterConstraints,
    RegisterDocument,
    RegisterTemplate,
    Request,
    Response,
    PROTOCOL_VERSION,
    StreamDecisions,
    StreamStatus,
    StreamSubmit,
    Verdict,
    WireDecision,
    WireEpoch,
    WireViolation,
    request_from_dict,
    request_from_json,
    response_checksum,
    response_from_dict,
    response_from_json,
)
from repro.service.service import ConstraintService
from repro.service.store import DocumentStore

__all__ = [
    "ConstraintService", "DocumentStore", "AsyncService",
    "Executor", "InlineExecutor", "ProcessExecutor",
    "Request", "RegisterConstraints", "RegisterDocument",
    "RegisterTemplate", "CertifiedSubmit",
    "ImplicationQuery", "InstanceQuery", "StreamSubmit", "StreamStatus",
    "FleetSubmit", "MetricsRequest", "PROTOCOL_VERSION",
    "Response", "Ack", "Verdict", "QueryAnswers", "MetricsSnapshot",
    "WireViolation", "WireDecision", "StreamDecisions", "ErrorResponse",
    "WireEpoch", "FleetDecisions",
    "request_from_dict", "request_from_json",
    "response_from_dict", "response_from_json", "response_checksum",
]

"""Pluggable execution strategies for service requests.

An :class:`Executor` turns one :class:`~repro.service.protocol.Request`
into one :class:`~repro.service.protocol.Response` against a
:class:`~repro.service.store.DocumentStore`.  Three strategies ship:

* :class:`InlineExecutor` — synchronous, in-process; the reference
  semantics every other executor must match bit-for-bit (the Hypothesis
  equivalence suite compares response checksums);
* :class:`ProcessExecutor` — fans *stateless* query batches across a
  ``multiprocessing`` pool (conclusions are independent, so a batch
  splits into contiguous chunks reassembled in submission order) and
  parallelises the refutation search of single-conclusion mixed-type
  instance queries across candidate families
  (:func:`repro.instance.search.bounded_refutation` with ``workers>1``).
  Stateful requests — registration, stream enforcement — always run
  inline: they mutate the store and are inherently serial per document;
* :class:`~repro.service.async_service.AsyncService` — not an executor
  but an ``asyncio`` façade that serialises requests per document and
  awaits responses; it drives whichever executor its service holds.

Executors never swallow errors: they raise
:class:`~repro.errors.ReproError` subclasses and let
:class:`~repro.service.service.ConstraintService.handle` turn them into
wire-level :class:`~repro.service.protocol.ErrorResponse` objects.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.pool
from time import perf_counter

from repro.analysis import IndependenceIndex
from repro.api.session import GENERAL_UNDECIDED, INSTANCE_UNDECIDED
from repro.constraints.model import ConstraintSet
from repro.errors import ReproError, ServiceError, UnsupportedProblemError
from repro.implication.result import Answer
from repro.obs import registry as _obs_registry
from repro.service.dispatch import bind_session, compiled_session
from repro.service.protocol import (
    Ack,
    CertifiedSubmit,
    ErrorResponse,
    FleetDecisions,
    FleetSubmit,
    ImplicationQuery,
    InstanceQuery,
    MetricsRequest,
    MetricsSnapshot,
    RegisterConstraints,
    RegisterDocument,
    RegisterTemplate,
    Request,
    Response,
    StreamStatus,
    StreamSubmit,
    QueryAnswers,
    StreamDecisions,
    Verdict,
    WireDecision,
    WireEpoch,
)
from repro.service.store import DocumentStore
from repro.trees.serialize import from_dict, to_dict


def build_metrics_snapshot(store: DocumentStore) -> MetricsSnapshot:
    """The live introspection payload: global registry + per-entity state.

    The ``metrics`` section is the process-wide
    :func:`repro.obs.registry` snapshot; ``streams`` carries each open
    stream's :meth:`~repro.stream.engine.StreamStats.wire_pairs` and
    ``fleets`` each open fleet's shape.  Both the server's inline
    short-circuit (served before the backpressure gate) and the
    :class:`InlineExecutor` dispatch build their answer here, so the two
    paths cannot drift.
    """
    streams = tuple(
        (doc, enforcer.stats.wire_pairs())
        for doc, _set_name, enforcer in store.live_streams())
    fleets = tuple(
        ("+".join(docs), tuple(sorted({
            "set": set_name, "backend": fleet.backend,
            "docs": fleet.size, "epoch": fleet.epoch,
            "checksum": fleet.checksum}.items())))
        for docs, set_name, fleet in store.live_fleets())
    return MetricsSnapshot(metrics=_obs_registry().to_dict(),
                           streams=streams, fleets=fleets)


class Executor:
    """Strategy interface: one request in, one response out."""

    def execute(self, request: Request,
                store: DocumentStore) -> Response:  # pragma: no cover - abstract
        raise NotImplementedError

    def close(self) -> None:
        """Release pooled resources (idempotent; inline executors no-op)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class InlineExecutor(Executor):
    """Synchronous in-process execution — the reference semantics."""

    def execute(self, request: Request, store: DocumentStore) -> Response:
        if isinstance(request, RegisterConstraints):
            compiled = store.add_constraints(request.name, request.constraints,
                                             replace=request.replace)
            stats = tuple(sorted(IndependenceIndex(compiled).stats().items()))
            return Ack("constraints", request.name, len(compiled),
                       stats=stats)
        if isinstance(request, RegisterDocument):
            tree = store.add_document(request.name, request.tree,
                                      replace=request.replace)
            return Ack("document", request.name, tree.size)
        if isinstance(request, ImplicationQuery):
            return self._implication(request, store)
        if isinstance(request, InstanceQuery):
            return self._instance(request, store)
        if isinstance(request, RegisterTemplate):
            outcome = store.add_template(request.name, request.template,
                                         request.constraints,
                                         replace=request.replace)
            return Ack("template", request.name, len(request.template.ops),
                       stats=outcome.wire_stats())
        if isinstance(request, StreamSubmit):
            return self._stream(request, store)
        if isinstance(request, CertifiedSubmit):
            return self._certified(request, store)
        if isinstance(request, StreamStatus):
            return self._stream_status(request, store)
        if isinstance(request, FleetSubmit):
            return self._fleet(request, store)
        if isinstance(request, MetricsRequest):
            return build_metrics_snapshot(store)
        raise ServiceError(f"unhandled request type {type(request).__name__}")

    # -- query handlers -------------------------------------------------
    def _implication(self, request: ImplicationQuery,
                     store: DocumentStore) -> QueryAnswers:
        report = store.session(request.constraints).implies_all(
            request.conclusions, fail_fast=request.fail_fast,
            require_decision=request.require_decision)
        return QueryAnswers(tuple(
            Verdict.of(result) if result is not None else None
            for result in report.results))

    def _instance(self, request: InstanceQuery,
                  store: DocumentStore) -> QueryAnswers:
        bound = store.binding(request.constraints, request.document)
        report = bound.implies_all(
            request.conclusions, fail_fast=request.fail_fast,
            require_decision=request.require_decision,
            max_moves=request.max_moves, search_budget=request.search_budget)
        return QueryAnswers(tuple(
            Verdict.of(result) if result is not None else None
            for result in report.results))

    def _stream(self, request: StreamSubmit,
                store: DocumentStore) -> StreamDecisions:
        enforcer = store.enforcer(request.document, request.constraints)
        # Pin fresh-leaf ids at the durable boundary (no-op when the store
        # has no journal): what is applied is exactly what is journaled,
        # so replay reallocates the same ids.
        ops = store.prepare_stream_ops(request.document, request.ops)
        decisions: list = []
        error: ReproError | None = None
        try:
            for op in ops:
                decisions.append(enforcer.apply(op))
        except ReproError as err:
            # A protocol-misuse op (nested begin, commit outside a
            # bracket, mutated-behind) aborts the submission mid-log;
            # the prefix already took effect and must still be journaled
            # or a recovered replica would silently lack those edits.
            error = err
        store.commit_stream_ops(request.document, request.constraints,
                                ops[:len(decisions)], enforcer)
        if error is not None:
            raise error
        return StreamDecisions(tuple(WireDecision.of(d) for d in decisions))

    def _certified(self, request: CertifiedSubmit,
                   store: DocumentStore) -> StreamDecisions:
        template, _outcome = store.template(request.template,
                                            request.constraints)
        enforcer = store.enforcer(request.document, request.constraints)
        bindings = dict(request.bindings)
        # Instantiate first (bad binding domains fail before the stream is
        # touched), then pin fresh-leaf ids at the durable boundary so the
        # journaled record replays to identical trees.
        ops = store.prepare_stream_ops(request.document,
                                       template.instantiate(bindings))
        # All-or-nothing: a guard or structural failure raises with
        # nothing applied and nothing recorded, so — unlike the per-op
        # path — there is never an applied prefix to journal.
        decisions = enforcer.apply_certified(template, bindings, ops=ops)
        store.commit_certified(request.document, request.constraints,
                               request.template, bindings, ops, enforcer)
        return StreamDecisions(tuple(WireDecision.of(d) for d in decisions))

    def _fleet(self, request: FleetSubmit,
               store: DocumentStore) -> FleetDecisions:
        fleet = store.fleet_session(request.documents, request.constraints,
                                    request.backend)
        position = {name: pos for pos, name in enumerate(fleet.names)}
        epochs: list[WireEpoch] = []
        for epoch in request.epochs:
            edits: dict[int, list] = {}
            for doc_name, ops in epoch:
                pos = position.get(doc_name)
                if pos is None:
                    raise ServiceError(
                        f"document {doc_name!r} is not in this fleet "
                        f"(members: {list(fleet.names)})")
                if pos in edits:
                    raise ServiceError(
                        f"document {doc_name!r} appears twice in one epoch; "
                        "merge its operations into one entry")
                edits[pos] = list(ops)
            report = fleet.submit_epoch(edits)
            epochs.append(WireEpoch.of(report, fleet.names))
        return FleetDecisions(docs=fleet.size, epochs=tuple(epochs),
                              checksum=fleet.checksum)

    def _stream_status(self, request: StreamStatus,
                       store: DocumentStore) -> Ack:
        store.document(request.document)  # unknown name -> ServiceError
        live = store.live_stream(request.document)
        if live is None:
            return Ack("stream", request.document, 0)
        _, enforcer = live
        stats = enforcer.stats
        # ``wire_pairs`` deliberately excludes ``revision`` — a
        # snapshot-internal counter that legitimately differs between a
        # live stream and its checkpoint-restored twin; everything it
        # does carry is part of the recovery-equivalence contract, so a
        # reconnecting client recovers its observability state exactly.
        return Ack("stream", request.document, stats.entries,
                   stats=stats.wire_pairs())


# ----------------------------------------------------------------------
# Process fan-out (top-level functions: pool workers must pickle them)
# ----------------------------------------------------------------------
class _Failed:
    """A conclusion whose decision raised, carried back positionally.

    The assembler replays the sequential loop's control flow, so an
    error is surfaced only if its conclusion would actually have been
    reached — a failure past a ``fail_fast`` cutoff must stay invisible,
    exactly as in :class:`InlineExecutor`.
    """

    __slots__ = ("error", "message")

    def __init__(self, err: Exception):
        self.error = type(err).__name__
        self.message = str(err)


def _decide_chunk(decide, conclusions) -> list:
    out = []
    for conclusion in conclusions:
        try:
            out.append(Verdict.of(decide(conclusion)))
        except ReproError as err:
            out.append(_Failed(err))
    return out


# Per-worker compiled-session cache, pinned by the pool initializer.
# Compiling a session (DFA products, canonical forms, containment memo
# shells) is the expensive part of a chunk; consecutive chunks of one
# query — and consecutive queries against the same registered set — hit
# the same constraints, so each worker keeps the last few compilations.
# ``None`` means "no pool initializer ran" (direct in-process calls):
# the cache is bypassed and behaviour is exactly the old compile-per-chunk.
_SESSION_CACHE: dict[tuple, object] | None = None
_SESSION_CACHE_LIMIT = 8


def _pin_session_cache(limit: int = 8) -> None:
    """Pool initializer: give this worker its own compiled-session cache."""
    global _SESSION_CACHE, _SESSION_CACHE_LIMIT
    _SESSION_CACHE = {}
    _SESSION_CACHE_LIMIT = max(1, limit)


def _worker_session(constraints: tuple):
    """The worker's compiled session for ``constraints`` (FIFO-evicted).

    Constraints hash by canonical key, so the pickled wire tuple keys the
    cache stably across chunks and across requests.
    """
    if _SESSION_CACHE is None:
        return compiled_session(ConstraintSet(constraints))
    session = _SESSION_CACHE.get(constraints)
    if session is None:
        if len(_SESSION_CACHE) >= _SESSION_CACHE_LIMIT:
            _SESSION_CACHE.pop(next(iter(_SESSION_CACHE)))
        session = compiled_session(ConstraintSet(constraints))
        _SESSION_CACHE[constraints] = session
    return session


def _implication_chunk(payload: tuple) -> list:
    """Worker: answer one contiguous chunk of implication conclusions."""
    constraints, conclusions = payload
    session = _worker_session(constraints)
    return _decide_chunk(session.implies, conclusions)


def _instance_chunk(payload: tuple) -> list:
    """Worker: answer one contiguous chunk of instance conclusions."""
    constraints, tree_dict, conclusions, max_moves, search_budget = payload
    session = _worker_session(constraints)
    bound = bind_session(session, from_dict(tree_dict))

    def decide(conclusion):
        return bound.implies_on(conclusion, max_moves=max_moves,
                                search_budget=search_budget)

    return _decide_chunk(decide, conclusions)


def _chunked(items: tuple, parts: int) -> list[tuple]:
    """Split into at most ``parts`` contiguous, order-preserving chunks."""
    parts = max(1, min(parts, len(items)))
    size, extra = divmod(len(items), parts)
    chunks, at = [], 0
    for i in range(parts):
        step = size + (1 if i < extra else 0)
        chunks.append(items[at:at + step])
        at += step
    return chunks


class ProcessExecutor(Executor):
    """Fan stateless query batches across a ``multiprocessing`` pool.

    Responses are reassembled in submission order and are bit-identical
    to :class:`InlineExecutor`'s — ``fail_fast`` masking and the
    ``require_decision`` raise are applied *after* reassembly, on the
    same first-not-implied / first-unknown entry the sequential loop
    would have stopped at.  Single-conclusion mixed-type instance
    queries, where the work is one refutation search rather than many
    conclusions, instead parallelise **inside** the search: every worker
    owns a scratch tree and an incremental snapshot and validates one
    stride of the shared candidate enumeration.

    The pool initializer pins a small per-worker compiled-session cache
    (``session_cache`` entries, FIFO), so repeated chunks against the
    same registered constraint set recompile nothing after the first
    touch in each worker.
    """

    def __init__(self, workers: int | None = None,
                 session_cache: int = 8):
        self._workers = workers or (multiprocessing.cpu_count() or 2)
        self._session_cache = max(1, session_cache)
        self._pool: multiprocessing.pool.Pool | None = None
        self._inline = InlineExecutor()

    @property
    def workers(self) -> int:
        return self._workers

    def _get_pool(self) -> multiprocessing.pool.Pool:
        if self._pool is None:
            self._pool = multiprocessing.Pool(
                processes=self._workers,
                initializer=_pin_session_cache,
                initargs=(self._session_cache,))
            _obs_registry().gauge("executor.pool_workers").set(self._workers)
        return self._pool

    def _map(self, fn, payloads: list) -> list:
        """``pool.map`` with fan-out accounting (chunks, wall time).

        Workers are separate processes, so their side of the work cannot
        reach this registry; the parent times the whole fan-out and
        attributes the per-chunk average — exact enough to spot a slow
        batch, free enough for the hot path.
        """
        m = _obs_registry()
        started = perf_counter()
        results = self._get_pool().map(fn, payloads)
        elapsed = perf_counter() - started
        m.counter("executor.chunks_total").inc(len(payloads))
        m.histogram("executor.chunk_seconds").observe(
            elapsed / max(1, len(payloads)))
        m.histogram("executor.map_seconds").observe(elapsed)
        return results

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def execute(self, request: Request, store: DocumentStore) -> Response:
        if isinstance(request, ImplicationQuery) and len(request.conclusions) > 1:
            wire = tuple(store.constraints(request.constraints))
            chunks = _chunked(request.conclusions, self._workers)
            results = self._map(
                _implication_chunk, [(wire, chunk) for chunk in chunks])
            verdicts = [v for chunk in results for v in chunk]
            return self._assemble(verdicts, request.fail_fast,
                                  request.require_decision, GENERAL_UNDECIDED)
        if isinstance(request, InstanceQuery):
            return self._instance(request, store)
        return self._inline.execute(request, store)

    def _instance(self, request: InstanceQuery,
                  store: DocumentStore) -> Response:
        if len(request.conclusions) <= 1:
            # One conclusion: the parallelism worth having is inside the
            # refutation search (candidate families), not across the batch.
            bound = store.binding(request.constraints, request.document)
            report = bound.implies_all(
                request.conclusions, fail_fast=request.fail_fast,
                require_decision=request.require_decision,
                max_moves=request.max_moves,
                search_budget=request.search_budget,
                search_workers=self._workers)
            return QueryAnswers(tuple(
                Verdict.of(result) if result is not None else None
                for result in report.results))
        wire = tuple(store.constraints(request.constraints))
        tree_dict = to_dict(store.document(request.document))
        chunks = _chunked(request.conclusions, self._workers)
        results = self._map(
            _instance_chunk,
            [(wire, tree_dict, chunk, request.max_moves,
              request.search_budget) for chunk in chunks])
        verdicts = [v for chunk in results for v in chunk]
        return self._assemble(verdicts, request.fail_fast,
                              request.require_decision, INSTANCE_UNDECIDED)

    @staticmethod
    def _assemble(verdicts: list, fail_fast: bool, require_decision: bool,
                  undecided_msg: str) -> Response:
        """Re-impose the sequential loop's observable control flow.

        The workers decided every conclusion; the inline loop would have
        decided only a prefix.  Walking in order: a failure or (with
        ``require_decision``) an UNKNOWN is surfaced exactly when the
        inline loop would have reached it, and everything past a
        ``fail_fast`` stop is masked to ``None`` — so the response (or
        error) is bit-identical to :class:`InlineExecutor`'s.
        """
        out: list[Verdict | None] = []
        stopped = False
        for verdict in verdicts:
            if stopped:
                out.append(None)
                continue
            if isinstance(verdict, _Failed):
                return ErrorResponse(error=verdict.error,
                                     message=verdict.message)
            if require_decision and verdict.answer == Answer.UNKNOWN.value:
                raise UnsupportedProblemError(undecided_msg)
            out.append(verdict)
            if fail_fast and verdict.answer != Answer.IMPLIED.value:
                stopped = True
        return QueryAnswers(tuple(out))

    def __repr__(self) -> str:
        state = "idle" if self._pool is None else "pool up"
        return f"ProcessExecutor({self._workers} workers, {state})"


__all__ = ["Executor", "InlineExecutor", "ProcessExecutor",
           "build_metrics_snapshot"]

"""The multi-document constraint service: one front door for everything.

A :class:`ConstraintService` pairs a
:class:`~repro.service.store.DocumentStore` (named documents, named
compiled constraint sets, live enforcement streams) with a pluggable
:class:`~repro.service.executors.Executor`, and answers the whole
protocol of :mod:`repro.service.protocol` through one method —
:meth:`handle` — with wire-level twins (:meth:`handle_dict`,
:meth:`handle_json`) for callers on the other side of a serialisation
boundary.  Errors never escape as exceptions at the wire level: every
:class:`~repro.errors.ReproError` becomes an
:class:`~repro.service.protocol.ErrorResponse` carrying the exception
class and message, so a misbehaving client cannot take the service down.

>>> from repro import ConstraintService, DataTree
>>> from repro.service import ImplicationQuery
>>> from repro.constraints import no_insert
>>> svc = ConstraintService()
>>> _ = svc.register_constraints("policy", [("/patient[/visit]", "down"),
...                                         ("/patient[/clinicalTrial]", "up"),
...                                         ("/patient[/clinicalTrial]", "down")])
>>> reply = svc.handle(ImplicationQuery(
...     "policy", (no_insert("/patient[/visit][/clinicalTrial]"),)))
>>> reply.answers
('implied',)

The live-object conveniences (:meth:`register_document`,
:meth:`session`, :meth:`enforcer`, …) expose the same store to in-process
callers that want :class:`~repro.api.session.Reasoner` objects rather
than wire verdicts.
"""

from __future__ import annotations

import json
from collections.abc import Iterable

from repro.api.session import BoundReasoner, Reasoner
from repro.constraints.model import ConstraintSet
from repro.errors import ReproError
from repro.service.executors import Executor, InlineExecutor
from repro.service.protocol import (
    ErrorResponse,
    Request,
    Response,
    request_from_dict,
)
from repro.service.store import DocumentStore
from repro.stream.engine import StreamEnforcer
from repro.trees.tree import DataTree


class ConstraintService:
    """Documents + compiled constraint sets behind one request protocol."""

    def __init__(self, *, executor: Executor | None = None,
                 store: DocumentStore | None = None):
        self._store = store if store is not None else DocumentStore()
        self._executor = executor if executor is not None else InlineExecutor()

    @property
    def store(self) -> DocumentStore:
        return self._store

    @property
    def executor(self) -> Executor:
        return self._executor

    def close(self) -> None:
        """Release the executor's pooled resources (idempotent)."""
        self._executor.close()

    def __enter__(self) -> "ConstraintService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # The protocol surface
    # ------------------------------------------------------------------
    def handle(self, request: Request) -> Response:
        """Serve one request; service-level failures become responses."""
        try:
            return self._executor.execute(request, self._store)
        except ReproError as err:
            return ErrorResponse(error=type(err).__name__, message=str(err))

    def handle_dict(self, payload: dict) -> dict:
        """The wire twin: dict in, dict out (parse errors included)."""
        try:
            request = request_from_dict(payload)
        except ReproError as err:
            return ErrorResponse(error=type(err).__name__,
                                 message=str(err)).to_dict()
        return self.handle(request).to_dict()

    def handle_json(self, payload: str) -> str:
        """The byte-boundary twin: JSON text in, JSON text out."""
        try:
            data = json.loads(payload)
        except ValueError as err:
            return ErrorResponse(error="ParseError",
                                 message=f"bad JSON: {err}").to_json()
        return json.dumps(self.handle_dict(data), sort_keys=True)

    # ------------------------------------------------------------------
    # Live-object conveniences (same store, no wire forms)
    # ------------------------------------------------------------------
    def register_document(self, name: str, tree: DataTree | dict, *,
                          replace: bool = False) -> DataTree:
        return self._store.add_document(name, tree, replace=replace)

    def register_constraints(self, name: str,
                             constraints: ConstraintSet | Iterable, *,
                             replace: bool = False) -> ConstraintSet:
        return self._store.add_constraints(name, constraints, replace=replace)

    def session(self, constraints: str) -> Reasoner:
        """The compiled session behind a registered constraint set."""
        return self._store.session(constraints)

    def binding(self, constraints: str, document: str) -> BoundReasoner:
        """A bound session on the named document's current state."""
        return self._store.binding(constraints, document)

    def enforcer(self, document: str, constraints: str) -> StreamEnforcer:
        """The named document's live enforcement stream."""
        return self._store.enforcer(document, constraints)

    def __repr__(self) -> str:
        return f"ConstraintService({self._store!r}, {self._executor!r})"


__all__ = ["ConstraintService"]

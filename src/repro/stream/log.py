"""Decisions and the append-only audit trail of an enforcement stream.

Every operation and every transaction marker submitted to a
:class:`~repro.stream.engine.StreamEnforcer` yields exactly one
:class:`Decision`; the :class:`AuditTrail` accumulates them in submission
order and never forgets a rejection — it is the machine-checkable record
of *why* the live document is in the state it is in, mirroring the
per-constraint :class:`~repro.constraints.validity.Violation` witnesses
the offline checker attaches to invalid pairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterator

from repro.constraints.validity import Violation
from repro.stream.ops import StreamOp


@dataclass(frozen=True)
class Decision:
    """The verdict on one submitted operation or marker.

    ``accepted`` means the cumulative edit satisfies the constraint set
    after this entry took effect; for an entry inside an open transaction
    (``pending=True``) the verdict is provisional — the transaction's
    :class:`~repro.stream.ops.Commit` decision is the binding one, and a
    failing commit (or an explicit rollback) undoes the whole bracket.
    ``violations`` carries the witnesses that justified a rejection (or,
    for pending entries, the violations currently standing).
    ``independent=True`` is the static analyzer's witness: the op was
    accepted with zero mask work because no constraint's impact signature
    intersects it (:mod:`repro.analysis`) — the verdict itself is
    bit-identical to what a full check would have produced.
    """

    seq: int
    op: StreamOp
    accepted: bool
    violations: tuple[Violation, ...] = ()
    txn: int | None = None
    pending: bool = False
    note: str = ""
    independent: bool = False

    @property
    def rejected(self) -> bool:
        return not self.accepted

    def __str__(self) -> str:
        verdict = "ok" if self.accepted else "REJECTED"
        if self.pending:
            verdict += " (pending)"
        txn = f" [txn {self.txn}]" if self.txn is not None else ""
        tail = ""
        if self.violations:
            tail = " | " + "; ".join(str(v) for v in self.violations)
        elif self.note:
            tail = f" | {self.note}"
        elif self.independent:
            tail = " | independent"
        return f"#{self.seq:<4} {self.op}{txn}: {verdict}{tail}"


@dataclass
class AuditTrail:
    """Append-only log of every decision a stream has taken.

    ``dropped`` counts entries compacted away (a durable server that
    checkpointed a stream keeps the trail's *length* — sequence numbers
    keep growing monotonically — without keeping every early decision in
    memory); ``len(trail)`` is always the total number of decisions ever
    taken, and indexing/iteration cover only the retained suffix.
    """

    entries: list[Decision] = field(default_factory=list)
    dropped: int = 0

    def append(self, decision: Decision) -> None:
        self.entries.append(decision)

    def compact(self, keep_last: int = 0) -> int:
        """Forget all but the last ``keep_last`` retained decisions.

        Sequence numbering is unaffected (the forgotten prefix still
        counts toward ``len``); returns how many entries were dropped.
        """
        cut = max(0, len(self.entries) - max(0, keep_last))
        if cut:
            self.dropped += cut
            del self.entries[:cut]
        return cut

    def __len__(self) -> int:
        return self.dropped + len(self.entries)

    def __iter__(self) -> Iterator[Decision]:
        return iter(self.entries)

    def __getitem__(self, at: int) -> Decision:
        return self.entries[at]

    def rejections(self) -> list[Decision]:
        """Every non-pending rejection, in submission order."""
        return [d for d in self.entries if d.rejected and not d.pending]

    def render(self) -> str:
        """The whole trail as one line per decision (examples print this)."""
        return "\n".join(str(d) for d in self.entries)

    def __str__(self) -> str:
        accepted = sum(1 for d in self.entries if d.accepted and not d.pending)
        rejected = sum(1 for d in self.entries if d.rejected and not d.pending)
        compacted = f", {self.dropped} compacted" if self.dropped else ""
        return (f"AuditTrail({len(self)} entries, "
                f"{accepted} accepted, {rejected} rejected{compacted})")


__all__ = ["Decision", "AuditTrail"]

"""Online enforcement of update constraints over a log of operations.

>>> from repro import DataTree, StreamEnforcer
>>> from repro.stream import AddLeaf, RemoveSubtree
>>> doc = DataTree()
>>> patient = doc.add_child(doc.root, "patient")
>>> trial = doc.add_child(patient, "clinicalTrial")
>>> s = StreamEnforcer([("/patient[/clinicalTrial]", "up")], doc)
>>> s.apply(AddLeaf(patient, "visit")).accepted
True
>>> s.apply(RemoveSubtree(trial)).accepted    # breaks the no-remove range
False
>>> doc.size                                  # the edit was rolled back
4

See :mod:`repro.stream.engine` for the enforcement model (one live
incremental snapshot, delta-maintained predicate masks, transaction
brackets with undo journals), :mod:`repro.stream.ops` for the operation
language, :mod:`repro.stream.log` for the audit trail and
:mod:`repro.stream.shard` for the multiprocessing shard runner.
"""

from repro.stream.engine import StreamEnforcer, StreamStats
from repro.stream.log import AuditTrail, Decision
from repro.stream.ops import (
    AddLeaf,
    Begin,
    Commit,
    Move,
    RemoveSubtree,
    Rollback,
)
from repro.stream.shard import (
    DocumentPartition,
    FleetJob,
    FleetRunReport,
    StreamJob,
    StreamReport,
    decision_checksum,
    partition_document,
    run_fleet,
    run_partitioned,
    run_sharded,
    run_stream,
)

__all__ = [
    "StreamEnforcer", "StreamStats",
    "AuditTrail", "Decision",
    "AddLeaf", "Move", "RemoveSubtree", "Begin", "Commit", "Rollback",
    "StreamJob", "StreamReport", "run_stream", "run_sharded",
    "decision_checksum",
    "FleetJob", "FleetRunReport", "run_fleet",
    "DocumentPartition", "partition_document", "run_partitioned",
]

"""Fan independent enforcement streams across worker processes.

Documents under write traffic are independent of one another: each stream
owns its document, its baseline and its audit trail, so a fleet of
streams is embarrassingly parallel.  The shard runner ships whole
:class:`StreamJob` bundles (constraints + document + update log) to a
``multiprocessing`` pool and collects per-stream :class:`StreamReport`
summaries whose checksums are machine- and process-independent — a
sharded run is bit-comparable to the same jobs run sequentially (the
determinism the shard tests pin down).

Trees travel in their nested-``dict`` interchange form
(:mod:`repro.trees.serialize`) and logs as tuples of frozen op
dataclasses, so a job pickles cheaply and rebuilds identically in the
worker.  ``workers <= 1`` (or a single job) runs inline — the sequential
twin used by tests and small batches.
"""

from __future__ import annotations

import multiprocessing
import os
import zlib
from dataclasses import dataclass
from typing import Any
from collections.abc import Iterable, Sequence

from repro.constraints.model import ConstraintSet, UpdateConstraint
from repro.stream.engine import StreamEnforcer
from repro.stream.ops import StreamOp
from repro.trees.serialize import from_dict, to_dict, to_literal
from repro.trees.tree import DataTree

_FOLD = 1_000_003
_MOD = 2 ** 61


@dataclass(frozen=True)
class StreamJob:
    """One shard: a policy, a document and the log to enforce against it."""

    constraints: tuple[UpdateConstraint, ...]
    tree: dict[str, Any]
    ops: tuple[StreamOp, ...]
    name: str = ""
    engine: str = "bitset"

    @staticmethod
    def build(constraints: ConstraintSet | Iterable[UpdateConstraint],
              tree: DataTree, ops: Sequence[StreamOp], *,
              name: str = "", engine: str = "bitset") -> "StreamJob":
        """Bundle live objects into the picklable wire form."""
        return StreamJob(constraints=tuple(constraints), tree=to_dict(tree),
                         ops=tuple(ops), name=name, engine=engine)


@dataclass(frozen=True)
class StreamReport:
    """What one stream did, in machine-independent numbers.

    ``decision_checksum`` folds every decision's (accepted, pending,
    violation-count) triple in order; ``document_digest`` is a CRC of the
    final document's id-annotated literal — together they pin the whole
    observable behaviour of the stream, so sequential and sharded runs
    (and re-runs on other machines) can be compared bit-for-bit.
    """

    name: str
    entries: int
    ops: int
    accepted: int
    rejected: int
    transactions: int
    rolled_back: int
    final_size: int
    revision: int
    decision_checksum: int
    document_digest: int

    def __str__(self) -> str:
        return (f"{self.name or 'stream'}: {self.ops} ops, "
                f"{self.accepted} accepted / {self.rejected} rejected, "
                f"{self.transactions} txns ({self.rolled_back} rolled "
                f"back), final size {self.final_size}")


def decision_checksum(decisions) -> int:
    """Order-sensitive fold of per-decision verdicts (id-independent)."""
    total = 0
    for d in decisions:
        code = int(d.accepted) << 1 | int(d.pending)
        total = (total * _FOLD + code * 31 + len(d.violations)) % _MOD
    return total


def run_stream(job: StreamJob) -> StreamReport:
    """Enforce one job's log start to finish (the worker entry point)."""
    tree = from_dict(job.tree)
    enforcer = StreamEnforcer(job.constraints, tree, engine=job.engine)
    decisions = enforcer.submit(job.ops)
    if enforcer.in_transaction:  # a log cut mid-bracket still settles
        decisions.append(enforcer.commit())
    stats = enforcer.stats
    digest = zlib.crc32(to_literal(tree, with_ids=True).encode())
    return StreamReport(
        name=job.name, entries=stats.entries, ops=stats.ops,
        accepted=stats.accepted, rejected=stats.rejected,
        transactions=stats.transactions, rolled_back=stats.rolled_back,
        final_size=tree.size, revision=stats.revision,
        decision_checksum=decision_checksum(decisions),
        document_digest=digest)


def run_sharded(jobs: Sequence[StreamJob],
                workers: int | None = None,
                chunksize: int = 1) -> list[StreamReport]:
    """Run a fleet of jobs, fanning across processes; reports in job order.

    ``workers=None`` sizes the pool to ``min(len(jobs), cpu_count)``;
    ``workers <= 1`` (or one job) runs inline with no pool at all.
    """
    jobs = list(jobs)
    if workers is None:
        workers = min(len(jobs), os.cpu_count() or 1)
    if workers <= 1 or len(jobs) <= 1:
        return [run_stream(job) for job in jobs]
    with multiprocessing.Pool(processes=min(workers, len(jobs))) as pool:
        return pool.map(run_stream, jobs, chunksize=chunksize)


__all__ = ["StreamJob", "StreamReport", "run_stream", "run_sharded",
           "decision_checksum"]

"""Fan independent enforcement streams across worker processes.

Documents under write traffic are independent of one another: each stream
owns its document, its baseline and its audit trail, so a fleet of
streams is embarrassingly parallel.  The shard runner ships whole
:class:`StreamJob` bundles (constraints + document + update log) to a
``multiprocessing`` pool and collects per-stream :class:`StreamReport`
summaries whose checksums are machine- and process-independent — a
sharded run is bit-comparable to the same jobs run sequentially (the
determinism the shard tests pin down).

Trees travel in their nested-``dict`` interchange form
(:mod:`repro.trees.serialize`) and logs as tuples of frozen op
dataclasses, so a job pickles cheaply and rebuilds identically in the
worker.  ``workers <= 1`` (or a single job) runs inline — the sequential
twin used by tests and small batches.

A second, finer granularity lives below the document level:
:func:`partition_document` statically plans an *intra-document* sharding
of one log over one document.  Each child of the root anchors a shard
(its preorder interval is a :class:`ShardRegion`); a shadow replay tags
every operation with the shard whose subtree wholly contains its
footprint and with the independence verdict of the static analyzer
(:mod:`repro.analysis`), and maximal runs of shard-local independent
operations become reorderable *batches* — within a batch, operations on
distinct shards commute, so :func:`run_partitioned` may apply them in
any shard order and still produce decisions and a final document
bit-identical to the sequential stream (intra-shard order is always
preserved; everything else — markers, cross-shard moves, dependent or
rejected ops — is a *boundary* that flushes the current batch and runs
in log position).
"""

from __future__ import annotations

import multiprocessing
import os
import zlib
from dataclasses import dataclass, replace
from typing import Any
from collections.abc import Iterable, Sequence

from repro.constraints.model import ConstraintSet, UpdateConstraint
from repro.stream.engine import StreamEnforcer
from repro.stream.log import Decision
from repro.stream.ops import (
    UPDATE_OPS,
    AddLeaf,
    Move,
    RemoveSubtree,
    StreamOp,
)
from repro.trees.serialize import from_dict, to_dict, to_literal
from repro.trees.tree import DataTree

_FOLD = 1_000_003
_MOD = 2 ** 61


@dataclass(frozen=True)
class StreamJob:
    """One shard: a policy, a document and the log to enforce against it."""

    constraints: tuple[UpdateConstraint, ...]
    tree: dict[str, Any]
    ops: tuple[StreamOp, ...]
    name: str = ""
    engine: str = "bitset"

    @staticmethod
    def build(constraints: ConstraintSet | Iterable[UpdateConstraint],
              tree: DataTree, ops: Sequence[StreamOp], *,
              name: str = "", engine: str = "bitset") -> "StreamJob":
        """Bundle live objects into the picklable wire form."""
        return StreamJob(constraints=tuple(constraints), tree=to_dict(tree),
                         ops=tuple(ops), name=name, engine=engine)


@dataclass(frozen=True)
class StreamReport:
    """What one stream did, in machine-independent numbers.

    ``decision_checksum`` folds every decision's (accepted, pending,
    violation-count) triple in order; ``document_digest`` is a CRC of the
    final document's id-annotated literal — together they pin the whole
    observable behaviour of the stream, so sequential and sharded runs
    (and re-runs on other machines) can be compared bit-for-bit.
    """

    name: str
    entries: int
    ops: int
    accepted: int
    rejected: int
    transactions: int
    rolled_back: int
    final_size: int
    revision: int
    decision_checksum: int
    document_digest: int

    def __str__(self) -> str:
        return (f"{self.name or 'stream'}: {self.ops} ops, "
                f"{self.accepted} accepted / {self.rejected} rejected, "
                f"{self.transactions} txns ({self.rolled_back} rolled "
                f"back), final size {self.final_size}")


def decision_checksum(decisions) -> int:
    """Order-sensitive fold of per-decision verdicts (id-independent)."""
    total = 0
    for d in decisions:
        code = int(d.accepted) << 1 | int(d.pending)
        total = (total * _FOLD + code * 31 + len(d.violations)) % _MOD
    return total


def run_stream(job: StreamJob) -> StreamReport:
    """Enforce one job's log start to finish (the worker entry point)."""
    tree = from_dict(job.tree)
    enforcer = StreamEnforcer(job.constraints, tree, engine=job.engine)
    decisions = enforcer.submit(job.ops)
    if enforcer.in_transaction:  # a log cut mid-bracket still settles
        decisions.append(enforcer.commit())
    stats = enforcer.stats
    digest = zlib.crc32(to_literal(tree, with_ids=True).encode())
    return StreamReport(
        name=job.name, entries=stats.entries, ops=stats.ops,
        accepted=stats.accepted, rejected=stats.rejected,
        transactions=stats.transactions, rolled_back=stats.rolled_back,
        final_size=tree.size, revision=stats.revision,
        decision_checksum=decision_checksum(decisions),
        document_digest=digest)


def run_sharded(jobs: Sequence[StreamJob],
                workers: int | None = None,
                chunksize: int = 1) -> list[StreamReport]:
    """Run a fleet of jobs, fanning across processes; reports in job order.

    ``workers=None`` sizes the pool to ``min(len(jobs), cpu_count)``;
    ``workers <= 1`` (or one job) runs inline with no pool at all.
    """
    jobs = list(jobs)
    if workers is None:
        workers = min(len(jobs), os.cpu_count() or 1)
    if workers <= 1 or len(jobs) <= 1:
        return [run_stream(job) for job in jobs]
    with multiprocessing.Pool(processes=min(workers, len(jobs))) as pool:
        return pool.map(run_stream, jobs, chunksize=chunksize)


# ----------------------------------------------------------------------
# Fleet jobs (one shared policy, many documents, epoch-batched writes)
# ----------------------------------------------------------------------

#: One epoch in wire form: ``((doc, (op, ...)), ...)`` sorted by doc.
FleetEpoch = tuple[tuple[int, tuple[StreamOp, ...]], ...]


@dataclass(frozen=True)
class FleetJob:
    """A whole fleet under one policy, with epoch-batched write traffic.

    Where a :class:`StreamJob` is one document and a flat op log, a fleet
    job is *many* documents checked together through a
    :class:`~repro.masks.fleet.FleetEvaluator`: each epoch edits any
    subset of the fleet and settles in one batched check.  ``backend``
    picks the mask backend (``None`` = environment-driven default), and
    the report's checksums are backend-independent — a numpy run is
    bit-comparable to a big-int run of the same job.
    """

    constraints: tuple[UpdateConstraint, ...]
    trees: tuple[dict[str, Any], ...]
    epochs: tuple[FleetEpoch, ...]
    name: str = ""
    backend: str | None = None

    @staticmethod
    def build(constraints: ConstraintSet | Iterable[UpdateConstraint],
              trees: Sequence[DataTree],
              epochs: Sequence[dict[int, Sequence[StreamOp]]], *,
              name: str = "", backend: str | None = None) -> "FleetJob":
        """Bundle live objects into the picklable wire form."""
        wire_epochs: tuple[FleetEpoch, ...] = tuple(
            tuple(sorted((doc, tuple(ops)) for doc, ops in epoch.items()))
            for epoch in epochs)
        return FleetJob(constraints=tuple(constraints),
                        trees=tuple(to_dict(tree) for tree in trees),
                        epochs=wire_epochs, name=name, backend=backend)


@dataclass(frozen=True)
class FleetRunReport:
    """What one fleet job did, in machine- and backend-independent numbers.

    ``decision_checksum`` is the evaluator's running fold of every epoch
    report (verdicts *and* witnesses); ``document_digest`` folds each
    final document's id-annotated literal CRC in fleet order.
    """

    name: str
    backend: str
    docs: int
    constraints: int
    epochs: int
    edited: int
    accepted: int
    rejected: int
    final_size: int
    decision_checksum: int
    document_digest: int

    def __str__(self) -> str:
        return (f"{self.name or 'fleet'} [{self.backend}]: {self.docs} docs, "
                f"{self.epochs} epochs, {self.accepted} accepted / "
                f"{self.rejected} rejected doc-epochs")


def run_fleet(job: FleetJob) -> FleetRunReport:
    """Run one fleet job's epochs start to finish (the worker entry point)."""
    # Imported here, not at module top: the fleet evaluator itself imports
    # :mod:`repro.stream.ops`, and this module loads as part of the
    # ``repro.stream`` package init — a module-level import would cycle
    # whenever ``repro.masks.fleet`` loads first.
    from repro.masks.fleet import FleetEvaluator

    trees = [from_dict(tree) for tree in job.trees]
    fleet = FleetEvaluator(job.constraints, trees, backend=job.backend)
    edited = accepted = rejected = 0
    for epoch in job.epochs:
        report = fleet.submit_epoch(
            {doc: list(ops) for doc, ops in epoch})
        edited += len(report.edited)
        accepted += len(report.accepted)
        rejected += len(report.rejected)
    digest = 0
    for tree in trees:
        crc = zlib.crc32(to_literal(tree, with_ids=True).encode())
        digest = (digest * _FOLD + crc) % _MOD
    return FleetRunReport(
        name=job.name, backend=fleet.backend, docs=len(trees),
        constraints=len(job.constraints), epochs=len(job.epochs),
        edited=edited, accepted=accepted, rejected=rejected,
        final_size=sum(tree.size for tree in trees),
        decision_checksum=fleet.checksum, document_digest=digest)


# ----------------------------------------------------------------------
# Intra-document sharding (static partition of one log over one tree)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ShardRegion:
    """One shard: a root child and its subtree, as seen by the planner.

    ``interval`` is the anchor's preorder ``(pre, post)`` interval and
    ``mask`` its subtree slot mask at the shadow revision where the shard
    first hosted an operation — descriptive metadata for reports and
    ordering heuristics; the correctness of a partition rests on the
    per-op shard tags, not on these snapshots.
    """

    anchor: int
    interval: tuple[int, int]
    mask: int

    def __str__(self) -> str:
        pre, post = self.interval
        return f"shard@#{self.anchor} [{pre}, {post}]"


@dataclass(frozen=True)
class OpPlan:
    """The planner's verdict on one log entry.

    ``shard`` names the root child whose subtree wholly contains the
    operation's footprint — ``None`` marks a *boundary* (marker,
    cross-shard or root-touching edit, dependent or rejected op, or an
    unpinned :class:`~repro.stream.ops.AddLeaf`, whose fresh-id draw is
    order-sensitive).  ``independent`` echoes the static analyzer's
    witness from the shadow replay.
    """

    seq: int
    op: StreamOp
    shard: int | None
    independent: bool


@dataclass(frozen=True)
class DocumentPartition:
    """A static schedule of one update log over one document.

    ``batches`` are maximal runs of consecutive shard-local independent
    operations (log seqs, in order); ``boundaries`` are the remaining
    seqs, each its own segment.  :meth:`schedule` interleaves both back
    into log order.
    """

    regions: tuple[ShardRegion, ...]
    plans: tuple[OpPlan, ...]
    batches: tuple[tuple[int, ...], ...]
    boundaries: tuple[int, ...]

    @property
    def ops(self) -> int:
        return len(self.plans)

    @property
    def shard_local(self) -> int:
        """Operations the planner proved reorderable across shards."""
        return sum(1 for p in self.plans if p.shard is not None)

    def schedule(self) -> tuple[tuple[int, ...], ...]:
        """Batches and boundaries merged back into log order."""
        segments = list(self.batches)
        segments.extend((seq,) for seq in self.boundaries)
        segments.sort(key=lambda seg: seg[0])
        return tuple(segments)

    def __str__(self) -> str:
        return (f"DocumentPartition({self.ops} ops, "
                f"{self.shard_local} shard-local across "
                f"{len(self.regions)} shards, "
                f"{len(self.batches)} batches, "
                f"{len(self.boundaries)} boundaries)")


def _root_shard(tree: DataTree, nid: int) -> int | None:
    """The root child whose subtree contains ``nid`` (None for the root)."""
    root = tree.root
    while True:
        parent = tree.parent(nid)
        if parent is None:
            return None
        if parent == root:
            return nid
        nid = parent


def _shard_of(tree: DataTree, op: StreamOp) -> int | None:
    """Pre-edit shard of ``op``'s whole footprint, or None (boundary).

    Conservative by construction: any edit that touches the root's child
    list (adding, moving or removing a root child) would create or
    destroy a shard mid-batch, so it is a boundary even when the
    analyzer finds it independent.
    """
    root = tree.root
    if isinstance(op, AddLeaf):
        if op.nid is None:  # fresh-id draw depends on application order
            return None
        if op.parent == root or op.parent not in tree:
            return None
        return _root_shard(tree, op.parent)
    if isinstance(op, Move):
        if op.nid not in tree or op.new_parent not in tree:
            return None
        if op.nid == root or op.new_parent == root:
            return None
        if tree.parent(op.nid) == root:  # relocating a whole shard
            return None
        source = _root_shard(tree, op.nid)
        target = _root_shard(tree, op.new_parent)
        return source if source == target else None
    if isinstance(op, RemoveSubtree):
        if op.nid not in tree or op.nid == root:
            return None
        if tree.parent(op.nid) == root:  # deleting a whole shard
            return None
        return _root_shard(tree, op.nid)
    return None  # markers


def partition_document(
        constraints: ConstraintSet | Iterable[UpdateConstraint],
        tree: DataTree, ops: Sequence[StreamOp], *,
        engine: str = "bitset") -> DocumentPartition:
    """Statically plan an intra-document sharding of ``ops`` over ``tree``.

    The planner replays the log on a *shadow copy* through a real
    :class:`StreamEnforcer` (analysis on), so every per-op verdict —
    shard membership, independence, acceptance — is ground truth for the
    exact state the operation will see.  An operation joins a batch only
    when it is analyzer-independent, accepted, and its whole footprint
    (pre-edit) lives inside one root child's subtree; batches flush at
    every boundary and whenever a pinned leaf id repeats (two adds
    pinning the same id must keep their order — the first to apply wins).

    ``tree`` is not modified.
    """
    ops = tuple(ops)
    shadow = tree.copy()
    enforcer = StreamEnforcer(constraints, shadow, engine=engine)
    index = enforcer.context.index
    plans: list[OpPlan] = []
    regions: dict[int, ShardRegion] = {}
    for seq, op in enumerate(ops):
        shard = (_shard_of(shadow, op)
                 if isinstance(op, UPDATE_OPS) else None)
        decision = enforcer.apply(op)
        if shard is not None and not (decision.independent
                                      and decision.accepted):
            shard = None
        if shard is not None and shard not in regions and shard in index:
            regions[shard] = ShardRegion(
                anchor=shard, interval=index.interval(shard),
                mask=index.subtree_mask(shard, include_self=True))
        plans.append(OpPlan(seq=seq, op=op, shard=shard,
                            independent=decision.independent))
    batches: list[tuple[int, ...]] = []
    boundaries: list[int] = []
    current: list[int] = []
    pinned: set[int] = set()

    def flush() -> None:
        if current:
            batches.append(tuple(current))
            current.clear()
            pinned.clear()

    for plan in plans:
        if plan.shard is None:
            flush()
            boundaries.append(plan.seq)
            continue
        op = plan.op
        if isinstance(op, AddLeaf) and op.nid is not None:
            if op.nid in pinned:
                flush()
            pinned.add(op.nid)
        current.append(plan.seq)
    flush()
    return DocumentPartition(
        regions=tuple(sorted(regions.values(),
                             key=lambda r: r.interval)),
        plans=tuple(plans), batches=tuple(batches),
        boundaries=tuple(boundaries))


SHARD_ORDERS = ("log", "interval", "reversed")


def run_partitioned(
        constraints: ConstraintSet | Iterable[UpdateConstraint],
        tree: DataTree, ops: Sequence[StreamOp], *,
        partition: DocumentPartition | None = None,
        engine: str = "bitset",
        shard_order: str = "log") -> list[Decision]:
    """Enforce ``ops`` over ``tree`` batch-wise, shards possibly reordered.

    Within each batch, operations are grouped by shard (intra-shard order
    preserved) and the groups applied in ``shard_order``: ``"log"``
    (first-appearance order — the identity schedule), ``"interval"``
    (ascending preorder interval of the shard region) or ``"reversed"``.
    Because batch operations are independent and confined to disjoint
    subtrees, every order yields decisions and a final document
    bit-identical to the plain sequential stream; decisions come back
    renumbered to the original log seqs, in log order.

    ``tree`` is adopted and mutated in place, exactly like handing it to
    a :class:`StreamEnforcer` directly.
    """
    ops = tuple(ops)
    if shard_order not in SHARD_ORDERS:
        raise ValueError(f"unknown shard order {shard_order!r}; "
                         f"expected one of {SHARD_ORDERS}")
    if partition is None:
        partition = partition_document(constraints, tree, ops,
                                       engine=engine)
    if len(partition.plans) != len(ops):
        raise ValueError(
            f"partition plans {len(partition.plans)} ops, got {len(ops)}")
    enforcer = StreamEnforcer(constraints, tree, engine=engine)
    plans = partition.plans
    interval_of = {r.anchor: r.interval for r in partition.regions}
    taken: list[tuple[int, Decision]] = []
    for segment in partition.schedule():
        if len(segment) == 1:
            seq = segment[0]
            taken.append((seq, enforcer.apply(plans[seq].op)))
            continue
        groups: dict[int, list[int]] = {}
        for seq in segment:
            shard = plans[seq].shard
            assert shard is not None  # batches hold only shard-local ops
            groups.setdefault(shard, []).append(seq)
        anchors = list(groups)
        if shard_order == "reversed":
            anchors.reverse()
        elif shard_order == "interval":
            anchors.sort(key=lambda a: interval_of.get(a, (a, a)))
        for anchor in anchors:
            for seq in groups[anchor]:
                taken.append((seq, enforcer.apply(plans[seq].op)))
    taken.sort(key=lambda pair: pair[0])
    return [replace(decision, seq=seq) for seq, decision in taken]


__all__ = ["StreamJob", "StreamReport", "run_stream", "run_sharded",
           "decision_checksum",
           "FleetJob", "FleetEpoch", "FleetRunReport", "run_fleet",
           "ShardRegion", "OpPlan", "DocumentPartition",
           "partition_document", "run_partitioned", "SHARD_ORDERS"]

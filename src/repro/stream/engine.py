"""The online enforcement engine: one live snapshot, per-op verdicts.

A :class:`StreamEnforcer` adopts a document and a compiled constraint set
and then ingests an update log (:mod:`repro.stream.ops`), deciding after
every operation whether the *cumulative* edit — the pair ``(I₀, J_now)``
of the opening instance and the live document — still satisfies every
constraint (Definition 2.3, in the data-oriented "valid for the current
instance" reading of Section 2.2).

The hot loop never re-snapshots:

* the document lives behind **one** incrementally-maintained
  :class:`~repro.trees.index.TreeIndex`, mutated in place through the
  ``apply_*`` edits (the same machinery the refutation-search journals
  drive);
* the evaluator's predicate masks are **delta-patched** per edit from the
  index's :class:`~repro.trees.index.EditDelta` log — per-op re-checking
  costs the edit's footprint (ancestor chains), not the document;
* the baseline side of every constraint is evaluated exactly once, at
  open, and frozen (:class:`~repro.constraints.validity.BaselineValidity`).

Rejected operations — and transactions whose commit finds the cumulative
edit invalid — are rolled back through a move/undo journal in the style of
the refutation search: every applied edit records its inverse (a move
records the old parent, an add records the leaf to re-remove, a remove
records the doomed subtree's preorder spec for revival into the freed slot
run), and a rollback replays the inverses newest-first.  Every submitted
entry yields exactly one :class:`~repro.stream.log.Decision` in the
append-only :class:`~repro.stream.log.AuditTrail`, with per-constraint
:class:`~repro.constraints.validity.Violation` witnesses on rejection.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import TYPE_CHECKING
from collections.abc import Iterable, Sequence

if TYPE_CHECKING:  # imported lazily at runtime (see _build_analyzer)
    from repro.analysis.independence import IndependenceAnalyzer
    from repro.certify.templates import Bindings, UpdateTemplate

from repro.constraints.model import (
    ConstraintSet,
    UpdateConstraint,
    constraint_set,
)
from repro.constraints.validity import BaselineValidity, Violation
from repro.errors import CertifyError, StreamError, TreeError
from repro.masks.baseline import MaskedBaseline
from repro.obs import MetricsRegistry, registry as _obs_registry
from repro.stream.log import AuditTrail, Decision
from repro.stream.ops import (
    AddLeaf,
    Begin,
    Commit,
    Move,
    RemoveSubtree,
    Rollback,
    StreamOp,
)
from repro.trees import serialize
from repro.trees.node import Node
from repro.trees.tree import DataTree
from repro.xpath.bitset import BitsetEvaluator
from repro.xpath.indexed import IndexedEvaluator

# Undo-journal entry tags (inverse edits, replayed newest-first).
_UNDO_MOVE = "move"      # (tag, nid, old_parent)
_UNDO_UNADD = "unadd"    # (tag, nid)
_UNDO_REVIVE = "revive"  # (tag, ((nid, parent, label), ...) preorder)


def _build_analyzer(constraints: ConstraintSet, tree_index
                    ) -> "IndependenceAnalyzer":
    # Imported lazily: repro.analysis consumes the stream-op algebra, so a
    # top-level import here would cycle through the package __init__.
    from repro.analysis.independence import (
        IndependenceAnalyzer,
        IndependenceIndex,
    )
    return IndependenceAnalyzer(IndependenceIndex(constraints), tree_index)


@dataclass(frozen=True)
class StreamStats:
    """Counters of a stream's life so far (all final, non-pending)."""

    entries: int            # decisions taken (ops + markers)
    ops: int                # update operations submitted
    accepted: int           # update ops whose effect survived
    rejected: int           # update ops rejected (violation or structural)
    transactions: int       # brackets opened
    committed: int          # brackets committed successfully
    rolled_back: int        # brackets undone (failed commit or rollback)
    revision: int           # snapshot revision (applied edits, incl. undos)
    independent: int = 0    # ops accepted with zero mask work (fast path)
    certified: int = 0      # ops applied through the certified hot path

    def wire_pairs(self) -> tuple[tuple[str, int], ...]:
        """The counters as sorted ``(name, value)`` pairs for the wire.

        This is what a :class:`~repro.service.protocol.StreamStatus` ack
        carries so reconnecting clients recover observability state:
        every counter except ``revision``, a snapshot-internal number
        that legitimately differs between a live stream and its
        checkpoint-restored twin (everything returned here is part of
        the recovery-equivalence contract, pinned by the fault suite).
        """
        return tuple(sorted({
            "entries": self.entries, "ops": self.ops,
            "accepted": self.accepted, "rejected": self.rejected,
            "transactions": self.transactions, "committed": self.committed,
            "rolled_back": self.rolled_back,
            "independent": self.independent,
            "certified": self.certified,
        }.items()))

    def __str__(self) -> str:
        return (f"{self.ops} ops ({self.accepted} accepted, "
                f"{self.rejected} rejected, {self.independent} independent), "
                f"{self.transactions} txns "
                f"({self.committed} committed, {self.rolled_back} rolled "
                f"back), rev {self.revision}")


class StreamEnforcer:
    """An update-constraint policy enforced online over one live document.

    Parameters:
        constraints: the policy (a :class:`ConstraintSet`, any iterable of
            constraints, or specs accepted by :func:`constraint_set`).
        tree: the document — **adopted**: the enforcer mutates it in place
            and the caller must not (foreign mutations stale the snapshot
            and raise on the next operation).
        engine: evaluation substrate for the per-op re-checks —
            ``"bitset"`` (default, delta-maintained predicate masks) or
            ``"indexed"`` (node-at-a-time; masks rebuilt per revision).
        analysis: enable the static independence fast path (default).
            An op no constraint's impact signature intersects is accepted
            with zero mask work — still journaled for rollback, audited
            with an ``independent=True`` witness, and bit-identical in
            verdict to full checking (:mod:`repro.analysis`).  Subclasses
            that bypass the live snapshot (recompute-from-scratch
            baselines) must pass ``analysis=False``.
        metrics: the :class:`~repro.obs.MetricsRegistry` the stream
            counts into (``stream.*`` counters).  Defaults to the
            process-global registry; pass :data:`repro.obs.NULL` to
            disable instrumentation (the overhead benchmark's baseline).
    """

    ENGINES = ("bitset", "indexed")

    def __init__(self,
                 constraints: ConstraintSet | Iterable[UpdateConstraint],
                 tree: DataTree, *, engine: str = "bitset",
                 analysis: bool = True,
                 metrics: MetricsRegistry | None = None):
        if not isinstance(constraints, ConstraintSet):
            constraints = constraint_set(*constraints)
        constraints.require_concrete()
        if engine not in self.ENGINES:
            raise ValueError(f"unknown evaluation engine {engine!r}; "
                             f"expected one of {self.ENGINES}")
        self._constraints = constraints
        self._tree = tree
        self._engine = engine
        if engine == "bitset":
            self._ctx: BitsetEvaluator | IndexedEvaluator = (
                BitsetEvaluator.for_tree(tree))
        else:
            self._ctx = IndexedEvaluator.for_tree(tree)
        self._checker = BaselineValidity(constraints, tree, context=self._ctx)
        self._metrics = metrics
        self._finish_init(analysis)

    def _finish_init(self, analysis: bool) -> None:
        """State shared by a fresh open and a checkpoint restore."""
        # Instruments are resolved once here so the hot loop pays one
        # attribute load and one ``inc`` per event, never a registry
        # lookup; ``metrics=NULL`` resolves to shared no-op instruments.
        m = self._metrics if self._metrics is not None else _obs_registry()
        self._m_ops = m.counter("stream.ops_total")
        self._m_accepted = m.counter("stream.accepted_total")
        self._m_rejected = m.counter("stream.rejected_total")
        self._m_independent = m.counter("stream.independent_total")
        self._m_rollbacks = m.counter("stream.rollbacks_total")
        self._m_decisions = m.counter("stream.decisions_total")
        self._m_certified = m.counter("stream.certified_ops_total")
        self._m_certified_seconds = m.histogram("certify.certified_seconds")
        # The bitset engine compares whole answer masks per op; the
        # indexed engine re-checks through the generic node-set diff.
        self._masked = (MaskedBaseline(self._checker, self._ctx)
                        if self._engine == "bitset" else None)
        self._analyzer = (_build_analyzer(self._constraints, self._ctx.index)
                          if analysis else None)
        # Violations standing after the last full check — the fast path's
        # gate: independence verdicts assume a currently-valid pair.
        self._standing: tuple[Violation, ...] = ()
        self._audit = AuditTrail()
        self._journal: list[tuple] | None = None  # open txn's undo journal
        self._txn_id: int | None = None
        self._txn_count = 0
        self._ops = 0
        self._accepted = 0
        self._rejected = 0
        self._committed = 0
        self._rolled_back = 0
        self._independent = 0
        self._certified_ops = 0

    # ------------------------------------------------------------------
    # State surface
    # ------------------------------------------------------------------
    @property
    def constraints(self) -> ConstraintSet:
        return self._constraints

    @property
    def tree(self) -> DataTree:
        """The live document (read-only by convention — see class docs)."""
        return self._tree

    @property
    def engine(self) -> str:
        return self._engine

    @property
    def context(self) -> BitsetEvaluator | IndexedEvaluator:
        """The live snapshot evaluator driving the per-op re-checks."""
        return self._ctx

    @property
    def audit(self) -> AuditTrail:
        return self._audit

    @property
    def in_transaction(self) -> bool:
        return self._journal is not None

    @property
    def analyzer(self) -> "IndependenceAnalyzer | None":
        """The static independence analyzer (``None`` when disabled)."""
        return self._analyzer

    @property
    def stats(self) -> StreamStats:
        return StreamStats(
            entries=len(self._audit), ops=self._ops,
            accepted=self._accepted, rejected=self._rejected,
            transactions=self._txn_count, committed=self._committed,
            rolled_back=self._rolled_back,
            revision=self._ctx.index.revision,
            independent=self._independent,
            certified=self._certified_ops)

    def baseline_answers(self) -> dict[UpdateConstraint, frozenset[Node]]:
        """``{c: q_c(I₀)}`` as frozen when the stream opened."""
        return self._checker.baseline_answers()

    def violations(self) -> list[Violation]:
        """Current witnesses of ``(I₀, J_now)`` (empty = valid)."""
        self._check_fresh()
        return list(self._current_violations())

    def _current_violations(self) -> tuple[Violation, ...]:
        """The per-op re-check — the one override point for alternative
        validation strategies (the benchmarks' recompute-from-scratch
        baseline replaces the live snapshot with a fresh one per call)."""
        if self._masked is not None:
            return self._masked.violations()
        return tuple(self._checker.violations(self._tree, context=self._ctx))

    def is_valid(self) -> bool:
        """Does the cumulative edit satisfy every constraint right now?"""
        self._check_fresh()
        return not self._current_violations()

    def _check_fresh(self) -> None:
        if not self._ctx.covers(self._tree):
            raise StreamError(
                "the document was mutated behind the stream; a "
                "StreamEnforcer owns its tree — submit operations instead "
                "of editing the tree directly")

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def apply(self, op: StreamOp) -> Decision:
        """Ingest one log entry; returns (and records) its decision."""
        self._check_fresh()
        if isinstance(op, Begin):
            return self._begin(op)
        if isinstance(op, Commit):
            return self._commit(op)
        if isinstance(op, Rollback):
            return self._rollback(op)
        return self._apply_update(op)

    def submit(self, ops: Sequence[StreamOp]) -> list[Decision]:
        """Ingest a whole log, in order; one decision per entry."""
        return [self.apply(op) for op in ops]

    def replay(self, ops: Sequence[StreamOp]) -> list[Decision]:
        """The journal-recovery entry: re-ingest a previously accepted log.

        Enforcement is deterministic, so replaying the ops a durable
        journal recorded (with leaf ids pinned) through a fresh — or
        checkpoint-:meth:`restore`-d — enforcer reproduces the original
        decisions bit for bit: same verdicts, same sequence numbers, same
        counters, same final document.  It *is* :meth:`submit`; the alias
        marks call sites that rebuild state rather than serve traffic.
        """
        return self.submit(ops)

    # ------------------------------------------------------------------
    # The certified hot path (repro.certify)
    # ------------------------------------------------------------------
    def apply_certified(self, template: "UpdateTemplate",
                        bindings: "Bindings", *,
                        ops: "Sequence[StreamOp] | None" = None
                        ) -> list[Decision]:
        """Run one certified-template instantiation with zero checking.

        The caller vouches (via :func:`repro.certify.certify`) that every
        guard-passing instantiation of ``template`` preserves the policy;
        this path therefore validates only the template's **guard** —
        binding domains, node existence, per-op structural preconditions,
        subtree-label bounds — and applies the whole bracket with no mask
        work: no per-op re-check, no commit-time validation.  The audit
        trail and the returned decisions are bit-identical to replaying
        ``[Begin(name), *template.instantiate(bindings), Commit]``
        through an uncertified enforcer (the Hypothesis oracle suite pins
        this), so journals mixing certified and per-op traffic replay to
        the same stream either way.

        ``ops`` optionally supplies the pre-instantiated sequence — the
        durable service pins fresh-leaf ids there so recovery replays
        produce the same node ids.  A guard failure raises
        :class:`~repro.errors.CertifyError` with nothing applied and
        nothing recorded; a mid-template structural conflict (one op
        invalidating a later op's target, which the per-op guard against
        the pre-state cannot see) undoes the applied prefix and raises
        :class:`~repro.errors.CertifyError`, leaving document, audit and
        counters untouched.
        """
        started = perf_counter()
        self._check_fresh()
        if self._journal is not None:
            raise StreamError("certified templates run as their own "
                              "bracket: commit or roll back the open "
                              "transaction first")
        error = template.guard_errors(bindings, self._tree)
        if error is not None:
            raise CertifyError(
                f"template {template.name!r} guard rejected the "
                f"bindings: {error}")
        concrete = (tuple(ops) if ops is not None
                    else template.instantiate(bindings))
        if len(concrete) != len(template.ops):
            raise CertifyError(
                f"template {template.name!r} has {len(template.ops)} "
                f"op(s) but {len(concrete)} were supplied")
        undos: list[tuple] = []
        try:
            for op in concrete:
                undos.append(self._perform(op))
        except TreeError as err:
            self._undo(undos)
            raise CertifyError(
                f"template {template.name!r} op {len(undos)} failed "
                f"structurally after the guard passed (an earlier op in "
                f"the template invalidated its target): {err}") from None
        # All applied: record the full bracket exactly as an uncertified
        # commit would have (certification guarantees it would accept).
        applied = len(concrete)
        self._txn_count += 1
        txn = self._txn_count
        decisions = [self._record(Begin(template.name), accepted=True,
                                  txn=txn)]
        for op in concrete:
            decisions.append(self._record(op, accepted=True, txn=txn,
                                          pending=True))
        decisions.append(self._record(Commit(), accepted=True, txn=txn,
                                      note=f"{applied} op(s) committed"))
        self._ops += applied
        self._accepted += applied
        self._committed += 1
        self._certified_ops += applied
        self._m_ops.inc(applied)
        self._m_accepted.inc(applied)
        self._m_certified.inc(applied)
        self._m_certified_seconds.observe(perf_counter() - started)
        return decisions

    # ------------------------------------------------------------------
    # Checkpoint / restore (the durable server's snapshot boundary)
    # ------------------------------------------------------------------
    #: Bumped when the checkpoint shape changes; ``restore`` refuses
    #: snapshots written by a different shape.
    STATE_VERSION = 1

    def state_dict(self) -> dict:
        """The stream's durable state as one JSON-safe dict.

        Captures everything a :meth:`restore` needs to continue the
        stream *exactly* where it stands: the live document, the frozen
        baseline answer sets (``q_c(I₀)`` — **not** re-derivable from the
        snapshot: rebasing the baseline onto the current document would
        extend no-remove protection to nodes added since open), and the
        decision counters that keep sequence numbers monotonic.  Only
        defined at a transaction boundary — an open bracket's undo
        journal holds live node references that do not serialise.
        """
        if self._journal is not None:
            raise StreamError("cannot checkpoint inside an open "
                              "transaction: commit or roll back first")
        base = self._checker.baseline_answers()
        return {
            "version": self.STATE_VERSION,
            "engine": self._engine,
            "analysis": self._analyzer is not None,
            "tree": serialize.to_dict(self._tree),
            "baseline": [sorted([n.nid, n.label] for n in base[c])
                         for c in self._checker.constraints],
            "counters": {
                "entries": len(self._audit),
                "ops": self._ops,
                "accepted": self._accepted,
                "rejected": self._rejected,
                "transactions": self._txn_count,
                "committed": self._committed,
                "rolled_back": self._rolled_back,
                "independent": self._independent,
                "certified": self._certified_ops,
            },
        }

    @classmethod
    def restore(cls, constraints: ConstraintSet | Iterable[UpdateConstraint],
                state: dict) -> "StreamEnforcer":
        """Rebuild a stream from a :meth:`state_dict` checkpoint.

        The restored enforcer adopts a fresh tree decoded from the
        snapshot, keeps checking against the *original* opening baseline,
        and continues sequence numbering where the checkpoint left off
        (the audit trail's compacted prefix counts toward ``len`` but is
        not retained).  Replaying the journal suffix after the checkpoint
        then reconverges with the uninterrupted stream.
        """
        version = state.get("version")
        if version != cls.STATE_VERSION:
            raise StreamError(f"cannot restore a stream checkpoint of "
                              f"version {version!r} (expected "
                              f"{cls.STATE_VERSION})")
        if not isinstance(constraints, ConstraintSet):
            constraints = constraint_set(*constraints)
        constraints.require_concrete()
        engine = state["engine"]
        if engine not in cls.ENGINES:
            raise StreamError(f"unknown evaluation engine {engine!r} in "
                              f"stream checkpoint")
        stream = cls.__new__(cls)
        stream._constraints = constraints
        stream._tree = serialize.from_dict(state["tree"])
        stream._engine = engine
        if engine == "bitset":
            stream._ctx = BitsetEvaluator.for_tree(stream._tree)
        else:
            stream._ctx = IndexedEvaluator.for_tree(stream._tree)
        answers = [frozenset(Node(int(nid), label) for nid, label in entry)
                   for entry in state["baseline"]]
        try:
            stream._checker = BaselineValidity.from_answers(constraints,
                                                            answers)
        except ValueError as err:
            raise StreamError(f"stream checkpoint does not match the "
                              f"constraint set: {err}") from None
        stream._metrics = None  # restored streams count into the global
        stream._finish_init(bool(state.get("analysis", True)))
        counters = state["counters"]
        stream._audit.dropped = int(counters["entries"])
        stream._ops = int(counters["ops"])
        stream._accepted = int(counters["accepted"])
        stream._rejected = int(counters["rejected"])
        stream._txn_count = int(counters["transactions"])
        stream._committed = int(counters["committed"])
        stream._rolled_back = int(counters["rolled_back"])
        stream._independent = int(counters["independent"])
        stream._certified_ops = int(counters.get("certified", 0))
        return stream

    def begin(self, name: str | None = None) -> Decision:
        return self.apply(Begin(name))

    def commit(self) -> Decision:
        return self.apply(Commit())

    def rollback(self) -> Decision:
        return self.apply(Rollback())

    # ------------------------------------------------------------------
    # Update operations
    # ------------------------------------------------------------------
    def _apply_update(self, op: StreamOp) -> Decision:
        self._ops += 1
        self._m_ops.inc()
        # The zero-work fast path: decided on the *pre-edit* snapshot,
        # only meaningful when no violations are standing (the analyzer's
        # verdicts assume a currently-valid cumulative pair — see
        # repro.analysis).  Outside a bracket the pair is always valid
        # here; inside one, `_standing` carries the last full check.
        fast = (self._analyzer is not None and not self._standing
                and self._analyzer.independent(op))
        try:
            undo = self._perform(op)
        except TreeError as err:
            # Nothing was applied: the edit paths validate before mutating.
            self._rejected += 1
            self._m_rejected.inc()
            return self._record(op, accepted=False, txn=self._txn_id,
                                note=f"structural error: {err}")
        if fast:
            self._independent += 1
            self._m_independent.inc()
            violations: tuple[Violation, ...] = ()
        else:
            violations = self._current_violations()
            self._standing = violations
        if self._journal is not None:
            # Inside a bracket: the edit stands until commit decides; the
            # verdict recorded here is the provisional cumulative one.
            self._journal.append(undo)
            return self._record(op, accepted=not violations,
                                violations=violations, txn=self._txn_id,
                                pending=True, independent=fast)
        if violations:
            self._undo([undo])
            self._standing = ()  # the undo restored the last valid state
            self._rejected += 1
            self._m_rejected.inc()
            return self._record(op, accepted=False, violations=violations)
        self._accepted += 1
        self._m_accepted.inc()
        return self._record(op, accepted=True, independent=fast)

    def _perform(self, op: StreamOp) -> tuple:
        """Apply one edit through the live snapshot; return its inverse."""
        ctx = self._ctx
        if isinstance(op, AddLeaf):
            nid = ctx.apply_add_leaf(op.parent, op.label, nid=op.nid)
            return (_UNDO_UNADD, nid)
        if isinstance(op, Move):
            old_parent = self._tree.parent(op.nid)
            if old_parent is None:
                raise TreeError("cannot move the root")
            ctx.apply_move(op.nid, op.new_parent)
            return (_UNDO_MOVE, op.nid, old_parent)
        if isinstance(op, RemoveSubtree):
            tree = self._tree
            if op.nid not in tree:
                raise TreeError(f"node {op.nid} not in tree")
            spec = tuple((n, tree.parent(n), tree.label(n))
                         for n in tree.descendants(op.nid, include_self=True))
            ctx.apply_remove_subtree(op.nid)
            return (_UNDO_REVIVE, spec)
        raise StreamError(f"unknown stream operation {op!r}")

    def _undo(self, journal: Sequence[tuple]) -> None:
        """Replay inverse edits newest-first (the search-journal pattern:
        an undone move finds the gap the original left, a revived subtree
        compacts into the freed slot run)."""
        ctx = self._ctx
        for entry in reversed(journal):
            tag = entry[0]
            if tag == _UNDO_MOVE:
                ctx.apply_move(entry[1], entry[2])
            elif tag == _UNDO_UNADD:
                ctx.apply_remove_subtree(entry[1])
            else:
                for nid, parent, label in entry[1]:
                    ctx.apply_add_leaf(parent, label, nid=nid)

    # ------------------------------------------------------------------
    # Transactions (flat brackets)
    # ------------------------------------------------------------------
    def _begin(self, op: Begin) -> Decision:
        if self._journal is not None:
            raise StreamError("transactions do not nest: commit or roll "
                              "back the open one before begin")
        self._txn_count += 1
        self._txn_id = self._txn_count
        self._journal = []
        return self._record(op, accepted=True, txn=self._txn_id)

    def _commit(self, op: Commit) -> Decision:
        journal = self._require_open("commit")
        violations = self._current_violations()
        txn = self._txn_id
        applied = len(journal)
        if violations:
            self._undo(journal)
            self._rolled_back += 1
            self._rejected += applied
            self._m_rollbacks.inc()
            self._m_rejected.inc(applied)
            decision = self._record(op, accepted=False,
                                    violations=violations, txn=txn,
                                    note=f"{applied} op(s) rolled back")
        else:
            self._committed += 1
            self._accepted += applied
            self._m_accepted.inc(applied)
            decision = self._record(op, accepted=True, txn=txn,
                                    note=f"{applied} op(s) committed")
        self._journal = None
        self._txn_id = None
        self._standing = ()  # committed-valid or rolled back to valid
        return decision

    def _rollback(self, op: Rollback) -> Decision:
        journal = self._require_open("rollback")
        txn = self._txn_id
        applied = len(journal)
        self._undo(journal)
        self._rolled_back += 1
        self._rejected += applied
        self._m_rollbacks.inc()
        self._m_rejected.inc(applied)
        self._journal = None
        self._txn_id = None
        self._standing = ()  # rolled back to the pre-bracket valid state
        return self._record(op, accepted=True, txn=txn,
                            note=f"{applied} op(s) rolled back")

    def _require_open(self, what: str) -> list[tuple]:
        if self._journal is None:
            raise StreamError(f"{what} outside a transaction")
        return self._journal

    def _record(self, op: StreamOp, accepted: bool,
                violations: tuple[Violation, ...] = (),
                txn: int | None = None, pending: bool = False,
                note: str = "", independent: bool = False) -> Decision:
        decision = Decision(seq=len(self._audit), op=op, accepted=accepted,
                            violations=violations, txn=txn, pending=pending,
                            note=note, independent=independent)
        self._audit.append(decision)
        self._m_decisions.inc()
        return decision

    def __repr__(self) -> str:
        state = f"txn {self._txn_id} open" if self.in_transaction else "idle"
        return (f"StreamEnforcer({len(self._constraints)} constraints, "
                f"|J|={self._tree.size}, {self._engine}, {state}, "
                f"{self.stats})")


__all__ = ["StreamEnforcer", "StreamStats"]

"""The update-log operation model of the enforcement stream.

The paper's update language ([27], Section 2) manipulates documents by
inserting fresh leaves, moving subtrees (identity-preserving) and deleting
subtrees — exactly the three structural edits the incremental
:class:`~repro.trees.index.TreeIndex` applies in place.  A *log* is a flat
sequence of these operations interleaved with transaction markers:

* :class:`AddLeaf` / :class:`Move` / :class:`RemoveSubtree` — the edits;
* :class:`Begin` / :class:`Commit` / :class:`Rollback` — flat (unnested)
  transaction brackets.  Operations outside a bracket are *autocommit*:
  each one is its own transaction.

All operations are frozen dataclasses — hashable, picklable (the shard
runner ships whole logs to worker processes) and printable in the audit
trail's one-line form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Union


@dataclass(frozen=True)
class AddLeaf:
    """Insert a fresh leaf labelled ``label`` under ``parent``.

    ``nid`` pins the new node's identifier; logs meant to be replayed
    (benchmarks, the equivalence suite, shard jobs) always pin it, so the
    same log produces the same instance on every replay.
    """

    parent: int
    label: str
    nid: int | None = None

    def __str__(self) -> str:
        pin = f" as #{self.nid}" if self.nid is not None else ""
        return f"add-leaf {self.label!r} under #{self.parent}{pin}"


@dataclass(frozen=True)
class Move:
    """Re-attach the subtree at ``nid`` under ``new_parent`` (ids kept)."""

    nid: int
    new_parent: int

    def __str__(self) -> str:
        return f"move #{self.nid} under #{self.new_parent}"


@dataclass(frozen=True)
class RemoveSubtree:
    """Delete the whole subtree rooted at ``nid``."""

    nid: int

    def __str__(self) -> str:
        return f"remove-subtree #{self.nid}"


@dataclass(frozen=True)
class Begin:
    """Open a transaction (flat — nesting is a :class:`~repro.errors.
    StreamError`).  ``name`` labels the bracket in the audit trail."""

    name: str | None = None

    def __str__(self) -> str:
        return f"begin {self.name}" if self.name else "begin"


@dataclass(frozen=True)
class Commit:
    """Close the open transaction, keeping its edits iff the cumulative
    document still satisfies the constraint set."""

    def __str__(self) -> str:
        return "commit"


@dataclass(frozen=True)
class Rollback:
    """Close the open transaction, undoing all of its edits."""

    def __str__(self) -> str:
        return "rollback"


UpdateOp = Union[AddLeaf, Move, RemoveSubtree]
Marker = Union[Begin, Commit, Rollback]
StreamOp = Union[UpdateOp, Marker]

UPDATE_OPS = (AddLeaf, Move, RemoveSubtree)
MARKERS = (Begin, Commit, Rollback)


# ----------------------------------------------------------------------
# Wire form (the service protocol ships logs as JSON)
# ----------------------------------------------------------------------
_OP_TAGS: dict[str, type[StreamOp]] = {
    "add-leaf": AddLeaf,
    "move": Move,
    "remove-subtree": RemoveSubtree,
    "begin": Begin,
    "commit": Commit,
    "rollback": Rollback,
}
_TAG_OF: dict[type[StreamOp], str] = {
    cls: tag for tag, cls in _OP_TAGS.items()}


def op_to_dict(op: StreamOp) -> dict[str, Any]:
    """One operation as a JSON-safe dict (``{"op": tag, ...fields}``)."""
    try:
        tag = _TAG_OF[type(op)]
    except KeyError:
        raise ValueError(f"unknown stream operation {op!r}") from None
    data: dict[str, Any] = {"op": tag}
    for name in type(op).__dataclass_fields__:
        value = getattr(op, name)
        if value is not None:
            data[name] = value
    return data


def op_from_dict(data: dict[str, Any]) -> StreamOp:
    """Rebuild an operation from its wire dict (inverse of :func:`op_to_dict`)."""
    fields = dict(data)
    tag = fields.pop("op", None)
    if not isinstance(tag, str) or tag not in _OP_TAGS:
        raise ValueError(f"unknown stream operation tag {tag!r}")
    cls = _OP_TAGS[tag]
    try:
        return cls(**fields)
    except TypeError as exc:
        raise ValueError(f"bad fields for stream op {tag!r}: {exc}") from None


__all__ = [
    "AddLeaf", "Move", "RemoveSubtree",
    "Begin", "Commit", "Rollback",
    "UpdateOp", "Marker", "StreamOp",
    "UPDATE_OPS", "MARKERS",
    "op_to_dict", "op_from_dict",
]

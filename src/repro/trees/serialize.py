"""Serialization of data trees.

Three interchange forms are supported:

* the compact literal of :mod:`repro.trees.builders` (``to_literal``),
* nested dictionaries (``to_dict`` / ``from_dict``) for JSON-ish storage,
* a minimal XML rendering (``to_xml``) in which node identifiers are emitted
  as ``id`` attributes — mirroring how the paper encodes identifiers when
  translating to regular key constraints (Example 3.1) and XICs
  (Example 3.2).
"""

from __future__ import annotations

from typing import Any

from repro.errors import TreeError
from repro.trees.tree import DataTree


def to_literal(tree: DataTree, with_ids: bool = False) -> str:
    """Render as the compact literal accepted by ``parse_tree``."""

    def render(nid: int) -> str:
        tag = tree.label(nid) + (f"#{nid}" if with_ids else "")
        kids = tree.children(nid)
        if not kids:
            return tag
        return tag + "(" + ", ".join(render(k) for k in kids) + ")"

    tops = tree.children(tree.root)
    return ", ".join(render(t) for t in tops)


def to_dict(tree: DataTree, nid: int | None = None) -> dict[str, Any]:
    """Nested-dictionary form: ``{"id", "label", "children"}``."""
    nid = tree.root if nid is None else nid
    return {
        "id": nid,
        "label": tree.label(nid),
        "children": [to_dict(tree, c) for c in tree.children(nid)],
    }


def from_dict(data: dict[str, Any]) -> DataTree:
    """Rebuild a tree from its nested-dictionary form."""
    try:
        tree = DataTree(data["label"], root_id=data["id"])
    except KeyError as exc:
        raise TreeError(f"missing key in tree dict: {exc}") from exc

    def attach(parent: int, spec: dict[str, Any]) -> None:
        nid = tree.add_child(parent, spec["label"], nid=spec["id"])
        for kid in spec.get("children", ()):
            attach(nid, kid)

    for kid in data.get("children", ()):
        attach(tree.root, kid)
    return tree


def to_xml(tree: DataTree, nid: int | None = None, indent: int = 0) -> str:
    """Minimal XML rendering with ``id`` attributes."""
    nid = tree.root if nid is None else nid
    pad = "  " * indent
    label = tree.label(nid)
    kids = tree.children(nid)
    if not kids:
        return f'{pad}<{label} id="{nid}"/>'
    inner = "\n".join(to_xml(tree, c, indent + 1) for c in kids)
    return f'{pad}<{label} id="{nid}">\n{inner}\n{pad}</{label}>'

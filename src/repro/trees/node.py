"""Nodes of unordered XML data trees.

Following Definition 2.1 of the paper, a node is a pair drawn from
``N x L``: a node *identifier* (we use non-negative integers) together with a
*label*.  Query answers are sets of such pairs, and validity of an update
``(I, J)`` compares answer sets across the two instances by these pairs.
Consequently a node that keeps its identifier but changes label is a
*different* node — exactly the behaviour mandated by the paper's model.

Fresh identifiers are handed out by a process-wide :class:`IdAllocator` so
that independently built trees never reuse an identifier by accident; the
constructions in Sections 4 and 5 (counterexample trees built out of several
instances) rely on this guarantee.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Node:
    """A node: an ``(id, label)`` pair, hashable and immutable."""

    nid: int
    label: str

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.label}#{self.nid}"

    def with_fresh_id(self) -> "Node":
        """Return a copy of this node carrying a brand-new identifier.

        Used by the paper's counterexample constructions ("replacing n with
        a new node n' with the same label", proof of Theorem 3.1).
        """
        return Node(fresh_id(), self.label)


class IdAllocator:
    """Monotone counter producing process-unique node identifiers."""

    def __init__(self, start: int = 1):
        self._counter = itertools.count(start)

    def fresh(self) -> int:
        """Return the next unused identifier."""
        return next(self._counter)

    def reserve_above(self, nid: int) -> None:
        """Ensure future identifiers are strictly greater than ``nid``.

        Called when trees are built with explicit identifiers so that the
        allocator never collides with them.
        """
        current = next(self._counter)
        if current <= nid:
            self._counter = itertools.count(nid + 1)
        else:
            self._counter = itertools.count(current)


#: Process-wide allocator used whenever an id is not supplied explicitly.
GLOBAL_IDS = IdAllocator()


def fresh_id() -> int:
    """Return a fresh node identifier from the global allocator."""
    return GLOBAL_IDS.fresh()


def reset_ids(start: int = 1) -> None:
    """Reset the global allocator (test isolation only)."""
    global GLOBAL_IDS
    GLOBAL_IDS = IdAllocator(start)

"""Structural operations used by the paper's constructions.

The counterexample proofs (Theorem 3.1 / Figure 3, Theorem 4.1 / Figures 4-5,
Theorems 4.7 and 5.1) repeatedly use a small toolbox of operations:

* *copying* a subtree with fresh identifiers ("by copy of a tree we denote a
  tree having the exact structure and labels, but fresh IDs"),
* *glueing* two instances at the root (Figure 3: "by putting together T and
  T', the presence of n and n' in range queries is not affected in any way"),
* *relabelling to a fresh label* ``z`` (the pruning steps of Theorems 4.7 and
  5.1 change unmarked nodes "into some unique, new label"),

and this module implements them once so every engine shares the same audited
code path.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import TreeError
from repro.trees.tree import DataTree

#: The fresh label used by every pruning/normalisation step, following the
#: paper's convention of calling it ``z``.
FRESH_LABEL = "z"


def fresh_label_for(used: set[str]) -> str:
    """A label guaranteed absent from ``used``.

    The soundness of every canonical-model argument requires the fresh
    label to be genuinely fresh; when user data already uses ``z`` we
    underscore until free.
    """
    candidate = FRESH_LABEL
    while candidate in used:
        candidate += "_"
    return candidate


def copy_subtree(src: DataTree, nid: int, dst: DataTree, parent: int,
                 fresh: bool = True) -> dict[int, int]:
    """Copy the subtree of ``src`` rooted at ``nid`` under ``dst``'s ``parent``.

    Returns the mapping from source ids to destination ids.  With
    ``fresh=True`` (the default) all copied nodes receive new identifiers —
    the paper's notion of *copy*.  With ``fresh=False`` identifiers are
    preserved, which is only legal when they do not clash with ``dst``.
    """
    mapping: dict[int, int] = {}
    stack = [(nid, parent)]
    while stack:
        cur, tgt = stack.pop()
        new_id = dst.add_child(tgt, src.label(cur), nid=None if fresh else cur)
        mapping[cur] = new_id
        for child in src.children(cur):
            stack.append((child, new_id))
    return mapping


def graft_at_root(base: DataTree, extra: DataTree, fresh: bool = False) -> dict[int, int]:
    """Merge ``extra`` into ``base`` by identifying the two roots.

    All top-level subtrees of ``extra`` become additional top-level subtrees
    of ``base``.  Because the query grammar forbids predicates on the root
    and only navigates downward, grafting at the root never *removes* a
    node's membership in any range, and the memberships of grafted nodes are
    computed within their own subtree — the key invariant behind Figure 3.

    Returns the id mapping for the grafted nodes (identity mapping when
    ``fresh=False``).
    """
    mapping: dict[int, int] = {extra.root: base.root}
    for child in extra.children(extra.root):
        mapping.update(copy_subtree(extra, child, base, base.root, fresh=fresh))
    return mapping


def replace_with_fresh_copy(tree: DataTree, nid: int) -> int:
    """Substitute node ``nid`` by a fresh node with the same label.

    Children and position are preserved; only the identifier changes.  This
    is the `I[n -> n']` operation from the proof of Theorem 3.1.  Returns the
    new identifier.
    """
    return tree.relabel_fresh(nid)


def relabel_outside(tree: DataTree, keep: set[int], label: str = FRESH_LABEL) -> DataTree:
    """Return a copy where every non-root node outside ``keep`` is replaced by
    a fresh node carrying the fresh label ``z``.

    This is the second pruning step of Theorems 4.7/5.1: unmarked nodes are
    replaced by fresh ``z`` nodes, which (for concrete queries) can belong to
    no range.
    """
    clone = tree.copy()
    for nid in list(clone.node_ids()):
        if nid == clone.root or nid in keep:
            continue
        clone.relabel_fresh(nid, label)
    return clone


def prune_to_union(tree: DataTree, keep: Iterable[int]) -> DataTree:
    """Return a copy containing only ``keep``-nodes and their ancestors.

    Children not on a path towards a kept node are removed — the "remove all
    the nodes that do not have a marked descendant" step of the pruning
    arguments.
    """
    keep_set = set(keep)
    marked: set[int] = {tree.root}
    for nid in keep_set:
        if nid not in tree:
            raise TreeError(f"kept node {nid} not in tree")
        marked.update(tree.ancestors(nid, include_self=True))
    clone = tree.copy()
    for nid in list(clone.node_ids()):
        if nid in marked or nid not in clone:
            continue
        clone.remove_subtree(nid)
    return clone


def restrict_labels(tree: DataTree, alphabet: set[str], label: str = FRESH_LABEL) -> DataTree:
    """Rename every non-root label outside ``alphabet`` to the fresh label.

    Because the query languages are positive (no label inequality tests),
    this renaming preserves membership in every range over ``alphabet`` —
    the normalisation applied at the start of Theorem 4.2's proof.  Node
    identifiers of renamed nodes change (they are different nodes).
    """
    clone = tree.copy()
    for nid in list(clone.node_ids()):
        if nid == clone.root:
            continue
        if clone.label(nid) not in alphabet:
            clone.relabel_fresh(nid, label)
    return clone


def remap_ids(tree: DataTree, mapping: dict[int, int]) -> DataTree:
    """Return a copy with node identifiers renamed by ``mapping``.

    Identifiers absent from the mapping are preserved.  Swapping two ids
    (``{a: b, b: a}``) implements the "interchange n and n'" step of the
    Figure 3 counterexample; the mapped ids must not collide with the
    remaining ones.
    """
    def rename(nid: int) -> int:
        return mapping.get(nid, nid)

    new_ids = [rename(nid) for nid in tree.node_ids()]
    if len(set(new_ids)) != len(new_ids):
        raise TreeError("id remapping creates a collision")
    clone = DataTree(tree.label(tree.root), root_id=rename(tree.root))
    stack = [(child, clone.root) for child in reversed(tree.children(tree.root))]
    while stack:
        src, parent = stack.pop()
        new_id = clone.add_child(parent, tree.label(src), nid=rename(src))
        stack.extend((c, new_id) for c in reversed(tree.children(src)))
    return clone


def swap_ids(tree: DataTree, a: int, b: int) -> DataTree:
    """Copy of ``tree`` with the identifiers of two nodes exchanged.

    Labels must agree — in the paper's model only same-labelled nodes are
    interchangeable without perturbing any range.
    """
    if tree.label(a) != tree.label(b):
        raise TreeError("interchanged nodes must carry the same label")
    return remap_ids(tree, {a: b, b: a})


def collect_labels(*trees: DataTree) -> set[str]:
    """All labels appearing in the given trees (roots excluded)."""
    labels: set[str] = set()
    for tree in trees:
        for node in tree.nodes():
            if node.nid != tree.root:
                labels.add(node.label)
    return labels

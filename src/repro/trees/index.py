"""Interval-encoded snapshots of data trees: the :class:`TreeIndex` kernel.

The paper's instance-level algorithms (Theorems 5.4/5.5) are polynomial in
``|J|``, but the naive :class:`~repro.trees.tree.DataTree` substrate answers
``descendants()`` by re-walking the tree, ``is_ancestor`` in O(depth) and
label lookups by full scans — so repeated pattern evaluation over one
instance (the workload of every Table 2 engine and of a bound
:class:`repro.api.session.BoundReasoner`) pays a quadratic-ish tax.

A :class:`TreeIndex` encodes one tree into flat lookup structures:

* an Euler-tour **pre/post interval numbering** over *gapped slots* —
  ``is_ancestor`` and descendant-interval membership become two integer
  comparisons, and the subtree of any node occupies a contiguous slot
  interval;
* a **label index**: label → slots of the nodes carrying it, sorted by
  construction, so "descendants of ``n`` labelled ``a``" is one ``bisect``
  pair instead of a subtree scan;
* per-node **depth** and **path-label** arrays (the node *words* consumed by
  the linear-fragment engines);
* **bitset views** (:meth:`label_mask`, :meth:`all_mask`,
  :meth:`subtree_mask`) — node-sets as Python ``int`` masks keyed by slot,
  the substrate of the set-at-a-time
  :class:`repro.xpath.bitset.BitsetEvaluator`;
* the canonical shape/hash of the snapshot, computed by the shared
  iterative (non-recursive) hasher.

Incremental maintenance
-----------------------
Slots are allocated with gaps (``SLOT_GAP`` per node at build time), so the
snapshot survives small edits *in place*: :meth:`apply_move`,
:meth:`apply_add_leaf` and :meth:`apply_remove_subtree` mutate the tree
**and** the index together, renumbering only the smallest enclosing subtree
whose interval still has room (a weight-balanced host search; the root is
renumbered with fresh gaps when nothing smaller fits).  This is what lets
the move/undo journals of the refutation search
(:mod:`repro.instance.search`, :func:`repro.instance.no_remove_engine.
merge_variants`) keep one live snapshot across thousands of candidate
pasts instead of rebinding per candidate.

Every applied edit bumps :attr:`revision` — evaluators key their memos on
it — appends an :class:`EditDelta` to a bounded log (:meth:`deltas_since`),
from which the set-at-a-time evaluator *patches* its cached predicate masks
instead of recomputing them (only the ancestor chains of the edit points
can change downward structure), and re-syncs the recorded tree
:attr:`~repro.trees.tree.DataTree.version`, so :attr:`fresh` stays true.  Mutating the tree *behind* the
index (directly through :class:`DataTree` methods) still stales it, exactly
as before: an index never observes mutations it did not apply.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import Iterable

from repro.errors import TreeError
from repro.trees.node import Node
from repro.trees.tree import DataTree, iter_canonical_shape

SLOT_GAP = 8       # slots allocated per node at (re)build time
HOST_DENSITY = 2   # a renumber host needs >= DENSITY * nodes slots of width
DELTA_LOG_CAP = 64  # edit deltas retained for delta-maintained consumers

_BIT = tuple(1 << b for b in range(8))  # byte-view membership test masks


class EditDelta:
    """Compact record of one applied edit, for delta-maintained consumers.

    Under a single edit only the *ancestor chains* of the edit points can
    change their downward structure — every other surviving node keeps its
    whole subtree, so any downward-looking fact cached about it (predicate
    satisfaction, notably) transfers verbatim to its new slot.  A delta
    therefore carries exactly what a mask maintainer needs:

    * ``relocated`` — ``(nid, old_slot, new_slot)`` for every surviving
      node whose slot changed (the moved subtree, plus the renumbered host
      subtree when the fast attach found no room);
    * ``vanished`` — ``(nid, old_slot)`` for every deleted node (remove
      only; the id lets baseline-mask maintainers recognise a later
      revival of the same node);
    * ``added`` — identifiers of freshly attached nodes (add-leaf only);
    * ``dirty`` — identifiers whose *subtree contents* changed: the
      ancestor chains of the old and new attachment points.  This set is
      upward closed, which is what makes patching sound for nested
      predicates.
    """

    __slots__ = ("revision", "relocated", "vanished", "added", "dirty")

    def __init__(self, revision: int,
                 relocated: tuple[tuple[int, int, int], ...],
                 vanished: tuple[tuple[int, int], ...],
                 added: tuple[int, ...],
                 dirty: tuple[int, ...]):
        self.revision = revision
        self.relocated = relocated
        self.vanished = vanished
        self.added = added
        self.dirty = dirty

    def patch_mask(self, mask: int) -> int:
        """Re-key a slot mask across this edit: relocated bits move to
        their new slots, vanished bits drop.

        The one shared kernel of every delta-maintained mask (predicate
        masks, baseline answer masks): moved bit values are read from the
        *pre-clear* mask — a new slot may reuse a slot freed in this same
        edit — and callers replay chained deltas oldest-first so slot
        reuse across edits resolves in order.
        """
        sets = 0
        clear = 0
        for _, old, new in self.relocated:
            if (mask >> old) & 1:
                sets |= 1 << new
            clear |= 1 << old
        for _, old in self.vanished:
            clear |= 1 << old
        return (mask & ~clear) | sets

    def __repr__(self) -> str:
        return (f"EditDelta(rev={self.revision}, moved={len(self.relocated)}, "
                f"gone={len(self.vanished)}, added={len(self.added)}, "
                f"dirty={len(self.dirty)})")


class TreeIndex:
    """An interval-encoded view of one :class:`DataTree`.

    Frozen with respect to *foreign* mutations (anything done directly to
    the tree), updatable in place through the ``apply_*`` methods.
    """

    __slots__ = ("_tree", "_built_version", "_root", "_slot", "_post",
                 "_slots", "_node_at", "_depth", "_labels", "_children",
                 "_parent", "_by_label", "_paths", "_shape", "_shape_hash",
                 "_revision", "_rebuilds", "_label_masks", "_all_mask",
                 "_kids_masks", "_parent_slots", "_delta_log", "_capture")

    def __init__(self, tree: DataTree):
        self._tree = tree
        self._built_version = tree.version
        self._root = tree.root
        # One iterative Euler tour builds every structure at once.
        slot: dict[int, int] = {}
        post: dict[int, int] = {}
        depth: dict[int, int] = {tree.root: 0}
        slots: list[int] = []
        node_at: dict[int, int] = {}
        by_label: dict[str, list[int]] = {}
        labels: dict[int, str] = {}
        children: dict[int, tuple[int, ...]] = {}
        parent: dict[int, int | None] = {tree.root: None}
        tree_children = tree.children
        tree_label = tree.label
        stack: list[int] = [tree.root]
        while stack:
            nid = stack.pop()
            s = len(slots) * SLOT_GAP
            slot[nid] = s
            slots.append(s)
            node_at[s] = nid
            label = tree_label(nid)
            labels[nid] = label
            bucket = by_label.get(label)
            if bucket is None:
                by_label[label] = [s]
            else:
                bucket.append(s)
            kids = tree_children(nid)
            children[nid] = kids
            if kids:
                child_depth = depth[nid] + 1
                for child in reversed(kids):
                    depth[child] = child_depth
                    parent[child] = nid
                    stack.append(child)
        # Preorder places a node's last child's subtree at the end of its
        # interval, so one reversed pass closes every interval.
        for s in reversed(slots):
            nid = node_at[s]
            kids = children[nid]
            post[nid] = post[kids[-1]] if kids else slot[nid]
        self._slot = slot
        self._post = post
        self._slots = slots
        self._node_at = node_at
        self._depth = depth
        self._labels = labels
        self._children = children
        self._parent = parent
        self._by_label = by_label
        self._paths: dict[int, tuple[str, ...]] = {tree.root: ()}
        self._shape: tuple | None = None
        self._shape_hash: int | None = None
        self._revision = 0
        self._rebuilds = 0
        self._label_masks: dict[str | None, int] = {}
        self._all_mask: int | None = None
        self._kids_masks: dict[int, int] = {}
        self._parent_slots: dict[int, int] | None = None
        self._delta_log: list[EditDelta] = []
        self._capture: dict[int, int] | None = None

    # ------------------------------------------------------------------
    # Snapshot identity
    # ------------------------------------------------------------------
    @property
    def tree(self) -> DataTree:
        return self._tree

    @property
    def root(self) -> int:
        return self._root

    @property
    def size(self) -> int:
        return len(self._slots)

    @property
    def fresh(self) -> bool:
        """Does the snapshot still describe its tree exactly?"""
        return self._tree.version == self._built_version

    @property
    def revision(self) -> int:
        """Bumped by every applied edit — evaluators key their memos on it."""
        return self._revision

    @property
    def rebuild_count(self) -> int:
        """How many edits fell back to a full renumber (observability)."""
        return self._rebuilds

    def covers(self, tree: DataTree) -> bool:
        """Is this a fresh snapshot of ``tree`` (identity, not equality)?"""
        return tree is self._tree and self.fresh

    def __contains__(self, nid: int) -> bool:
        return nid in self._slot

    # ------------------------------------------------------------------
    # O(1) structure lookups
    # ------------------------------------------------------------------
    def label(self, nid: int) -> str:
        try:
            return self._labels[nid]
        except KeyError:
            raise TreeError(f"node {nid} not in snapshot") from None

    def node(self, nid: int) -> Node:
        return Node(nid, self.label(nid))

    def children(self, nid: int) -> tuple[int, ...]:
        try:
            return self._children[nid]
        except KeyError:
            raise TreeError(f"node {nid} not in snapshot") from None

    def parent(self, nid: int) -> int | None:
        try:
            return self._parent[nid]
        except KeyError:
            raise TreeError(f"node {nid} not in snapshot") from None

    def depth(self, nid: int) -> int:
        try:
            return self._depth[nid]
        except KeyError:
            raise TreeError(f"node {nid} not in snapshot") from None

    def pre(self, nid: int) -> int:
        """Document-order (Euler-tour) slot of ``nid``.

        Slots are gapped, so consecutive nodes differ by more than one —
        only the *order* and the interval containments are meaningful.
        """
        return self._slot[nid]

    def node_at(self, slot: int) -> int:
        """The node occupying ``slot`` (KeyError on free slots)."""
        return self._node_at[slot]

    def interval(self, nid: int) -> tuple[int, int]:
        """``[pre, post]`` — slot interval of the subtree at ``nid``."""
        return self._slot[nid], self._post[nid]

    def is_ancestor(self, anc: int, nid: int) -> bool:
        """Strict ancestry in O(1): interval containment."""
        return self._slot[anc] < self._slot[nid] <= self._post[anc]

    def in_subtree(self, nid: int, anchor: int) -> bool:
        """Is ``nid`` in the subtree rooted at ``anchor`` (self included)?"""
        return self._slot[anchor] <= self._slot[nid] <= self._post[anchor]

    def mask_export(self) -> tuple[list[int], list[int], list[str],
                                   list[int]]:
        """Flat preorder arrays for the fleet mask kernels.

        Returns ``(pres, posts, labels, parent_pos)``, all aligned by
        preorder position: the node's gapped slot (its mask bit), its
        subtree-closing slot, its label, and the preorder *position* of
        its parent (``-1`` for the root).  Positions rather than ids keep
        the export id-free — an array backend gathers through positions
        and only maps back to ids (via :meth:`node_at` on the slot) when
        a witness must be materialised.
        """
        slots = self._slots
        node_at = self._node_at
        parent = self._parent
        post = self._post
        labels = self._labels
        pos: dict[int, int] = {}
        nids: list[int] = []
        for i, s in enumerate(slots):
            nid = node_at[s]
            nids.append(nid)
            pos[nid] = i
        posts = [post[n] for n in nids]
        labs = [labels[n] for n in nids]
        parent_pos = [-1 if (p := parent[n]) is None else pos[p]
                      for n in nids]
        return list(slots), posts, labs, parent_pos

    def path_labels(self, nid: int) -> tuple[str, ...]:
        """Labels on the root-to-``nid`` path (root excluded) — the *word*
        of the node; memoised via the parent chain, O(n) total."""
        cached = self._paths.get(nid)
        if cached is not None:
            return cached
        chain: list[int] = []
        cur: int | None = nid
        while cur is not None and cur not in self._paths:
            chain.append(cur)
            cur = self._parent.get(cur)
        if cur is None and chain:
            raise TreeError(f"node {nid} not in snapshot")
        for node in reversed(chain):
            par = self._parent[node]
            assert par is not None
            self._paths[node] = self._paths[par] + (self._labels[node],)
        return self._paths[nid]

    # ------------------------------------------------------------------
    # Indexed candidate enumeration
    # ------------------------------------------------------------------
    def node_ids(self) -> tuple[int, ...]:
        """All nodes in document (preorder) order."""
        node_at = self._node_at
        return tuple(node_at[s] for s in self._slots)

    def labels(self) -> set[str]:
        """The label alphabet of the snapshot (root label included)."""
        return {label for label, bucket in self._by_label.items() if bucket}

    def nodes_with_label(self, label: str) -> list[int]:
        """All nodes carrying ``label``, document order."""
        node_at = self._node_at
        return [node_at[s] for s in self._by_label.get(label, ())]

    def descendants(self, nid: int, include_self: bool = False) -> list[int]:
        """Strict descendants as a contiguous slice of the slot array."""
        slots = self._slots
        lo = bisect_left(slots, self._slot[nid]) + (0 if include_self else 1)
        hi = bisect_right(slots, self._post[nid], lo=max(lo, 0))
        node_at = self._node_at
        return [node_at[s] for s in slots[lo:hi]]

    def descendants_with_label(self, label: str, anchor: int) -> list[int]:
        """Strict descendants of ``anchor`` labelled ``label``.

        Two bisections on the label's sorted slots — O(log n + answer)
        instead of scanning the whole subtree.
        """
        pres = self._by_label.get(label)
        if not pres:
            return []
        lo = bisect_right(pres, self._slot[anchor])
        hi = bisect_right(pres, self._post[anchor], lo=lo)
        node_at = self._node_at
        return [node_at[s] for s in pres[lo:hi]]

    def count_descendants_with_label(self, label: str, anchor: int) -> int:
        """Cardinality of :meth:`descendants_with_label`, O(log n)."""
        pres = self._by_label.get(label)
        if not pres:
            return 0
        lo = bisect_right(pres, self._slot[anchor])
        return bisect_right(pres, self._post[anchor], lo=lo) - lo

    def minimal_cover(self, nids: Iterable[int]) -> list[int]:
        """Drop every node lying in another given node's subtree.

        The survivors' descendant intervals are disjoint and cover exactly
        the union of the inputs' intervals — the right anchor set for a
        ``//`` step over a whole frontier.
        """
        survivors: list[int] = []
        covered = -1
        for nid in sorted(nids, key=self._slot.__getitem__):
            if self._slot[nid] > covered:
                survivors.append(nid)
                covered = self._post[nid]
        return survivors

    # ------------------------------------------------------------------
    # Bitset views (node-sets as int masks keyed by slot)
    # ------------------------------------------------------------------
    def pack_slots(self, slots: Iterable[int]) -> int:
        """Fold an iterable of slots into one int mask (byte-buffer fold).

        O(width/8 + len(slots)) — the churn-free way to build a mask,
        instead of one big-int ``|= 1 << slot`` allocation per member.
        """
        top = self._slots[-1] if self._slots else 0
        buf = bytearray((top >> 3) + 1)
        size = len(buf)
        for s in slots:
            i = s >> 3
            if i >= size:  # rare: packing slots beyond the current maximum
                buf.extend(bytes(i + 1 - size))
                size = i + 1
            buf[i] |= 1 << (s & 7)
        return int.from_bytes(buf, "little")

    def all_mask(self) -> int:
        """Mask with one bit per occupied slot (cached per revision)."""
        mask = self._all_mask
        if mask is None:
            mask = self._all_mask = self.pack_slots(self._slots)
        return mask

    def label_mask(self, label: str | None) -> int:
        """Mask of the nodes carrying ``label`` (``None`` = every node)."""
        if label is None:
            return self.all_mask()
        mask = self._label_masks.get(label)
        if mask is None:
            mask = self.pack_slots(self._by_label.get(label, ()))
            self._label_masks[label] = mask
        return mask

    def children_mask(self, nid: int) -> int:
        """Mask of ``nid``'s children (cached per revision)."""
        mask = self._kids_masks.get(nid)
        if mask is None:
            slot = self._slot
            mask = self.pack_slots([slot[c] for c in self._children[nid]])
            self._kids_masks[nid] = mask
        return mask

    def parent_slots(self) -> dict[int, int]:
        """``slot -> parent's slot`` for every non-root node (cached per
        revision) — the one-hop substrate of the whole-set step primitives."""
        table = self._parent_slots
        if table is None:
            parent = self._parent
            slot = self._slot
            node_at = self._node_at
            root = self._root
            table = {}
            for s in self._slots:
                nid = node_at[s]
                if nid != root:
                    table[s] = slot[parent[nid]]  # type: ignore[index]
            self._parent_slots = table
        return table

    def parents_mask(self, target: int, label: str | None = None) -> int:
        """Mask of parents of the ``target`` nodes — one whole-set hop up.

        ``label`` must be the label whose bucket covers every bit of
        ``target`` (pass ``None`` when the target is not label-homogeneous);
        it restricts the scan to that bucket's slot list.
        """
        up = self.parent_slots()
        bucket = self.label_slots(label)
        if target == self.label_mask(label):
            # Common leaf-predicate case: every bucket member qualifies.
            return self.pack_slots({up[s] for s in bucket if s in up})
        view = target.to_bytes((target.bit_length() + 7) >> 3, "little")
        limit = len(view) << 3
        bits = _BIT
        out: set[int] = set()
        add = out.add
        for s in bucket:
            if s < limit and view[s >> 3] & bits[s & 7] and s in up:
                add(up[s])
        return self.pack_slots(out)

    def ancestors_mask(self, target: int, label: str | None = None) -> int:
        """Mask of strict ancestors of the ``target`` nodes.

        Marked-ancestor early exit: every tree edge is climbed at most
        once per call, so the whole-set closure costs O(n) amortised.
        ``label`` restricts the scan exactly as in :meth:`parents_mask`.
        """
        up = self.parent_slots()
        bucket = self.label_slots(label)
        seen: set[int] = set()
        add = seen.add
        if target == self.label_mask(label):
            sources = bucket
        else:
            view = target.to_bytes((target.bit_length() + 7) >> 3, "little")
            limit = len(view) << 3
            bits = _BIT
            sources = [s for s in bucket
                       if s < limit and view[s >> 3] & bits[s & 7]]
        get = up.get
        for s in sources:
            cur = get(s)
            while cur is not None and cur not in seen:
                add(cur)
                cur = get(cur)
        return self.pack_slots(seen)

    def child_step_mask(self, frontier: int, test: int,
                        label: str | None = None) -> int:
        """One ``/`` step over a whole frontier: nodes passing ``test``
        whose parent is in ``frontier`` — byte-view membership tests over
        the label's slot list, no per-bit big-int arithmetic."""
        up = self.parent_slots()
        tview = test.to_bytes((test.bit_length() + 7) >> 3, "little")
        tlimit = len(tview) << 3
        fview = frontier.to_bytes((frontier.bit_length() + 7) >> 3, "little")
        flimit = len(fview) << 3
        bits = _BIT
        keep: list[int] = []
        append = keep.append
        get = up.get
        for s in self.label_slots(label):
            if s >= tlimit or not tview[s >> 3] & bits[s & 7]:
                continue
            ps = get(s)
            if ps is not None and ps < flimit and fview[ps >> 3] & bits[ps & 7]:
                append(s)
        return self.pack_slots(keep)

    def label_slots(self, label: str | None) -> list[int]:
        """Occupied slots carrying ``label`` (every slot for ``None``), as a
        sorted list — the iterable twin of :meth:`label_mask`."""
        if label is None:
            return self._slots
        return self._by_label.get(label, [])

    def subtree_mask(self, nid: int, include_self: bool = False) -> int:
        """Raw interval mask of the subtree at ``nid``.

        Covers the *slot range* — gap bits included — so intersect with
        :meth:`all_mask` or a label mask before treating bits as nodes.
        """
        lo = self._slot[nid] + (0 if include_self else 1)
        hi = self._post[nid]
        if lo > hi:
            return 0
        return ((1 << (hi - lo + 1)) - 1) << lo

    # ------------------------------------------------------------------
    # Incremental maintenance (tree + index mutate together)
    # ------------------------------------------------------------------
    def _bump(self) -> None:
        """Close out one applied edit: new revision, caches re-keyed.

        The bitset caches (label/all/children masks, parent-slot table) are
        *patched* by the edit paths rather than dropped, so the refutation
        search's journals pay per-edit cost proportional to the renumbered
        region, not to the tree.
        """
        self._revision += 1
        self._built_version = self._tree.version
        self._paths = {self._root: ()}
        self._shape = None
        self._shape_hash = None

    def _chain(self, nid: int) -> list[int]:
        """``nid`` and its ancestors up to the root (post-edit pointers)."""
        out: list[int] = []
        cur: int | None = nid
        parent = self._parent
        while cur is not None:
            out.append(cur)
            cur = parent[cur]
        return out

    def _log_delta(self, capture: dict[int, int],
                   vanished: tuple[tuple[int, int], ...],
                   added: tuple[int, ...],
                   dirty_anchors: tuple[int, ...]) -> None:
        """Record the edit just closed by :meth:`_bump` in the delta log."""
        slot = self._slot
        relocated = tuple((n, old, now) for n, old in capture.items()
                          if (now := slot.get(n)) is not None and now != old)
        dirty: dict[int, None] = dict.fromkeys(added)
        for anchor in dirty_anchors:
            for n in self._chain(anchor):
                dirty[n] = None
        log = self._delta_log
        log.append(EditDelta(self._revision, relocated, vanished, added,
                             tuple(dirty)))
        if len(log) > DELTA_LOG_CAP:
            del log[:len(log) - DELTA_LOG_CAP]

    def deltas_since(self, revision: int) -> list[EditDelta] | None:
        """The deltas taking ``revision`` to the current one, oldest first.

        ``None`` when the log no longer reaches back that far — the caller
        must recompute from scratch.  Empty list when already current.
        """
        span = self._revision - revision
        if span == 0:
            return []
        if span < 0 or span > len(self._delta_log):
            return None
        return self._delta_log[-span:]

    def _detach_subtree(self, nid: int) -> list[int]:
        """Remove the subtree's slots from every slot structure.

        Returns the subtree's nodes in document order.  Structural maps
        (labels/parent/children/depth) are left to the caller; the bitset
        caches are patched in place.
        """
        lo, hi = self._slot[nid], self._post[nid]
        slots = self._slots
        i = bisect_left(slots, lo)
        j = bisect_right(slots, hi, lo=i)
        removed = slots[i:j]
        del slots[i:j]
        node_at = self._node_at
        parent_slots = self._parent_slots
        kids_masks = self._kids_masks
        capture = self._capture
        nodes: list[int] = []
        gone_by_label: dict[str, list[int]] = {}
        for s in removed:
            n = node_at.pop(s)
            nodes.append(n)
            if capture is not None:
                # First detach wins: a host renumber re-detaches nodes the
                # edit already relocated, and their *original* slot is the
                # one a delta consumer must clear.
                capture.setdefault(n, s)
            gone_by_label.setdefault(self._labels[n], []).append(s)
            del self._slot[n]
            del self._post[n]
            if parent_slots is not None:
                parent_slots.pop(s, None)
            kids_masks.pop(n, None)
        label_masks = self._label_masks
        for label, gone in gone_by_label.items():
            bucket = self._by_label[label]
            a = bisect_left(bucket, lo)
            b = bisect_right(bucket, hi, lo=a)
            del bucket[a:b]
            mask = label_masks.get(label)
            if mask is not None:
                label_masks[label] = mask ^ self.pack_slots(gone)
        if self._all_mask is not None and removed:
            self._all_mask ^= self.pack_slots(removed)
        return nodes

    def _fix_posts_upward(self, start: int | None) -> None:
        """Re-close intervals from ``start`` up, stopping once unchanged."""
        a = start
        while a is not None:
            new_post = self._slot[a]
            for c in self._children[a]:
                pc = self._post[c]
                if pc > new_post:
                    new_post = pc
            if self._post[a] == new_post:
                break
            self._post[a] = new_post
            a = self._parent[a]

    def _subtree_slot_count(self, nid: int) -> int:
        """Occupied slots inside ``nid``'s interval (two bisections)."""
        lo = bisect_left(self._slots, self._slot[nid])
        return bisect_right(self._slots, self._post[nid], lo=lo) - lo

    def _find_host(self, anchor: int, extra: int) -> int:
        """Lowest ancestor-or-self of ``anchor`` whose interval can absorb
        ``extra`` more nodes at :data:`HOST_DENSITY`; the root always can
        (its interval is re-spaced on demand)."""
        a = anchor
        while a != self._root:
            width = self._post[a] - self._slot[a] + 1
            if width >= HOST_DENSITY * (self._subtree_slot_count(a) + extra):
                return a
            a = self._parent[a]
        return self._root

    def _renumber_subtree(self, host: int) -> None:
        """Re-spread ``host``'s whole subtree over its slot interval.

        Unslotted nodes hanging off the structural maps (a freshly attached
        subtree) receive slots; ``pre``/``post`` of ``host`` itself are
        preserved (root excepted: the root re-spaces with fresh gaps, which
        is the full-rebuild fallback counted by :attr:`rebuild_count`)."""
        children = self._children
        # New document order of the host subtree, depths refreshed as the
        # walk descends (moved nodes change depth).
        order: list[int] = []
        depth = self._depth
        stack = [host]
        while stack:
            n = stack.pop()
            order.append(n)
            kids = children[n]
            if kids:
                d = depth[n] + 1
                for c in reversed(kids):
                    depth[c] = d
                    stack.append(c)
        m = len(order)
        if host == self._root:
            self._rebuilds += 1
            lo = 0
            new_slots = [i * SLOT_GAP for i in range(m)]
        else:
            lo, hi = self._slot[host], self._post[host]
            width = hi - lo + 1
            if m == 1:
                new_slots = [lo]
            else:
                step = width - 1
                new_slots = [lo + (i * step) // (m - 1) for i in range(m)]
        # Drop the old slots of the already-slotted part of the subtree
        # (detached nodes in `order` have none), then slot the new layout.
        if host in self._slot:
            self._detach_subtree(host)
        slots = self._slots
        at = bisect_left(slots, lo)
        slots[at:at] = new_slots
        node_at = self._node_at
        slot_of = self._slot
        kids_masks = self._kids_masks
        fresh_by_label: dict[str, list[int]] = {}
        for n, s in zip(order, new_slots, strict=True):
            slot_of[n] = s
            node_at[s] = n
            kids_masks.pop(n, None)
            fresh_by_label.setdefault(self._labels[n], []).append(s)
        label_masks = self._label_masks
        for label, added in fresh_by_label.items():
            bucket = self._by_label.setdefault(label, [])
            a = bisect_left(bucket, lo)
            bucket[a:a] = added  # ascending and disjoint from the rest
            mask = label_masks.get(label)
            if mask is not None:
                label_masks[label] = mask ^ self.pack_slots(added)
        if self._all_mask is not None:
            self._all_mask ^= self.pack_slots(new_slots)
        parent_slots = self._parent_slots
        if parent_slots is not None:
            parent_d = self._parent
            for n in order:
                if n != self._root:
                    parent_slots[slot_of[n]] = slot_of[parent_d[n]]  # type: ignore[index]
        post = self._post
        for n in reversed(order):
            kids = children[n]
            post[n] = post[kids[-1]] if kids else slot_of[n]

    def apply_move(self, nid: int, new_parent: int) -> None:
        """Move ``nid`` under ``new_parent`` in the tree *and* the index.

        The index stays fresh: only the smallest enclosing interval with
        room is renumbered.  Raises :class:`TreeError` (tree and index both
        untouched) on illegal moves, exactly like :meth:`DataTree.move`.
        """
        if nid not in self._slot or new_parent not in self._slot:
            raise TreeError("node not in snapshot")
        self._tree.move(nid, new_parent)  # validates root/cycle first
        old_parent = self._parent[nid]
        assert old_parent is not None
        capture: dict[int, int] = {}
        self._capture = capture
        try:
            detached = self._detach_subtree(nid)
            self._children[old_parent] = tuple(
                c for c in self._children[old_parent] if c != nid)
            self._kids_masks.pop(old_parent, None)
            # Close the old side's intervals while the moved subtree is still
            # fully detached (its nodes have no posts to consult).
            self._fix_posts_upward(old_parent)
            self._children[new_parent] = self._children[new_parent] + (nid,)
            self._kids_masks.pop(new_parent, None)
            self._parent[nid] = new_parent
            if not self._attach_after(new_parent, detached):
                self._renumber_subtree(
                    self._find_host(new_parent, len(detached)))
        finally:
            self._capture = None
        self._bump()
        self._log_delta(capture, vanished=(), added=(),
                        dirty_anchors=(old_parent, new_parent))

    def _attach_after(self, new_parent: int, detached: list[int]) -> bool:
        """Fast attach: compact the detached subtree into the free run right
        after ``new_parent``'s interval end.

        ``detached`` is the subtree in its (unchanged) preorder, so
        consecutive slots are a valid renumbering.  O(k + depth) — this is
        what keeps the search journals' move/undo pairs cheap: an undo finds
        the gap the original move left behind.  Returns False when the free
        run is too short (the caller then renumbers a host subtree).
        """
        k = len(detached)
        old_post = self._post[new_parent]
        slots = self._slots
        i = bisect_right(slots, old_post)
        if i < len(slots) and slots[i] - old_post - 1 < k:
            return False
        new_slots = list(range(old_post + 1, old_post + 1 + k))
        slot_of = self._slot
        node_at = self._node_at
        kids_masks = self._kids_masks
        depth = self._depth
        parent_d = self._parent
        fresh_by_label: dict[str, list[int]] = {}
        for n, s in zip(detached, new_slots, strict=True):
            slot_of[n] = s
            node_at[s] = n
            kids_masks.pop(n, None)
            # Parents precede children in preorder, so depths resolve in
            # one pass even though the whole subtree changed level.
            depth[n] = depth[parent_d[n]] + 1  # type: ignore[index]
            fresh_by_label.setdefault(self._labels[n], []).append(s)
        slots[i:i] = new_slots
        label_masks = self._label_masks
        for label, added in fresh_by_label.items():
            bucket = self._by_label.setdefault(label, [])
            a = bisect_left(bucket, added[0])
            bucket[a:a] = added
            mask = label_masks.get(label)
            if mask is not None:
                label_masks[label] = mask | self.pack_slots(added)
        if self._all_mask is not None:
            self._all_mask |= self.pack_slots(new_slots)
        parent_slots = self._parent_slots
        if parent_slots is not None:
            parent_d = self._parent
            for n in detached:
                parent_slots[slot_of[n]] = slot_of[parent_d[n]]  # type: ignore[index]
        children = self._children
        post = self._post
        for n in reversed(detached):
            kids = children[n]
            post[n] = post[kids[-1]] if kids else slot_of[n]
        top = old_post + k
        a: int | None = new_parent
        while a is not None and self._post[a] == old_post:
            self._post[a] = top
            a = self._parent[a]
        return True

    def apply_add_leaf(self, parent: int, label: str,
                       nid: int | None = None) -> int:
        """Attach a fresh leaf in the tree *and* the index; returns its id.

        Appending after a subtree's end usually finds a free slot in O(log
        n) (the gap a removed sibling left behind — the merge journals'
        revive pattern); otherwise the host renumber kicks in.
        """
        if parent not in self._slot:
            raise TreeError(f"parent {parent} not in snapshot")
        new_id = self._tree.add_child(parent, label, nid=nid)
        self._labels[new_id] = label
        self._parent[new_id] = parent
        self._children[new_id] = ()
        self._children[parent] = self._children[parent] + (new_id,)
        self._depth[new_id] = self._depth[parent] + 1
        self._kids_masks.pop(parent, None)
        old_post = self._post[parent]
        slots = self._slots
        i = bisect_right(slots, old_post)
        free = old_post + 1
        capture: dict[int, int] = {}
        if i == len(slots) or free < slots[i]:
            # Fast path: the slot right after the parent's interval is free.
            slots.insert(i, free)
            self._node_at[free] = new_id
            self._slot[new_id] = free
            self._post[new_id] = free
            insort(self._by_label.setdefault(label, []), free)
            mask = self._label_masks.get(label)
            if mask is not None:
                self._label_masks[label] = mask | (1 << free)
            if self._all_mask is not None:
                self._all_mask |= 1 << free
            if self._parent_slots is not None:
                self._parent_slots[free] = self._slot[parent]
            a: int | None = parent
            while a is not None and self._post[a] == old_post:
                self._post[a] = free
                a = self._parent[a]
        else:
            self._capture = capture
            try:
                self._renumber_subtree(self._find_host(parent, 1))
            finally:
                self._capture = None
        self._bump()
        self._log_delta(capture, vanished=(), added=(new_id,),
                        dirty_anchors=(parent,))
        return new_id

    def apply_remove_subtree(self, nid: int) -> None:
        """Delete ``nid``'s subtree from the tree *and* the index."""
        if nid not in self._slot:
            raise TreeError(f"node {nid} not in snapshot")
        self._tree.remove_subtree(nid)  # validates (root) first
        parent = self._parent[nid]
        assert parent is not None
        capture: dict[int, int] = {}
        self._capture = capture
        try:
            doomed = self._detach_subtree(nid)
        finally:
            self._capture = None
        self._children[parent] = tuple(
            c for c in self._children[parent] if c != nid)
        self._kids_masks.pop(parent, None)
        for n in doomed:
            del self._labels[n]
            del self._parent[n]
            del self._children[n]
            del self._depth[n]
        self._fix_posts_upward(parent)
        self._bump()
        self._log_delta({}, vanished=tuple(capture.items()), added=(),
                        dirty_anchors=(parent,))

    # ------------------------------------------------------------------
    # Canonical shape (iterative hasher)
    # ------------------------------------------------------------------
    def canonical_shape(self) -> tuple:
        """Canonical shape of the snapshot, iteratively folded and cached."""
        if self._shape is None:
            self._shape = iter_canonical_shape(self._root, self._labels,
                                               self._children)
            self._shape_hash = hash(self._shape)
        return self._shape

    def canonical_hash(self) -> int:
        """Hash of :meth:`canonical_shape` (computed once per snapshot)."""
        if self._shape_hash is None:
            self.canonical_shape()
        assert self._shape_hash is not None
        return self._shape_hash

    def __repr__(self) -> str:
        state = "fresh" if self.fresh else "STALE"
        return (f"TreeIndex(size={self.size}, root={self._root}, "
                f"labels={len(self._by_label)}, rev={self._revision}, "
                f"{state})")


__all__ = ["TreeIndex", "EditDelta", "SLOT_GAP", "HOST_DENSITY",
           "DELTA_LOG_CAP"]

"""Interval-encoded snapshots of data trees: the :class:`TreeIndex` kernel.

The paper's instance-level algorithms (Theorems 5.4/5.5) are polynomial in
``|J|``, but the naive :class:`~repro.trees.tree.DataTree` substrate answers
``descendants()`` by re-walking the tree, ``is_ancestor`` in O(depth) and
label lookups by full scans — so repeated pattern evaluation over one
instance (the workload of every Table 2 engine and of a bound
:class:`repro.api.session.BoundReasoner`) pays a quadratic-ish tax.

A :class:`TreeIndex` freezes one tree into flat lookup structures:

* an Euler-tour **pre/post interval numbering** — ``is_ancestor`` and
  descendant-interval membership become two integer comparisons, and the
  strict-descendant set of any node is a contiguous slice of the preorder
  array;
* a **label index**: label → preorder numbers of the nodes carrying it,
  sorted by construction, so "descendants of ``n`` labelled ``a``" is one
  ``bisect`` pair instead of a subtree scan;
* per-node **depth** and **path-label** arrays (the node *words* consumed by
  the linear-fragment engines);
* the canonical shape/hash of the snapshot, computed by the shared
  iterative (non-recursive) hasher.

The snapshot records the tree's mutation :attr:`~repro.trees.tree.DataTree.
version` at build time; :attr:`fresh` is the staleness test every consumer
checks before trusting the index.  Mutate-and-requery means rebuilding — an
index never observes mutations.
"""

from __future__ import annotations

from bisect import bisect_right

from repro.errors import TreeError
from repro.trees.node import Node
from repro.trees.tree import DataTree, iter_canonical_shape


class TreeIndex:
    """A frozen, interval-encoded view of one :class:`DataTree`."""

    __slots__ = ("_tree", "_built_version", "_root", "_pre", "_post",
                 "_order", "_depth", "_labels", "_children", "_parent",
                 "_by_label", "_paths", "_shape", "_shape_hash")

    def __init__(self, tree: DataTree):
        self._tree = tree
        self._built_version = tree.version
        self._root = tree.root
        # One iterative Euler tour builds every structure at once.
        pre: dict[int, int] = {}
        post: dict[int, int] = {}
        depth: dict[int, int] = {tree.root: 0}
        order: list[int] = []
        by_label: dict[str, list[int]] = {}
        labels: dict[int, str] = {}
        children: dict[int, tuple[int, ...]] = {}
        parent: dict[int, int | None] = {tree.root: None}
        tree_children = tree.children
        tree_label = tree.label
        stack: list[int] = [tree.root]
        while stack:
            nid = stack.pop()
            pre[nid] = len(order)
            order.append(nid)
            label = tree_label(nid)
            labels[nid] = label
            bucket = by_label.get(label)
            if bucket is None:
                by_label[label] = [pre[nid]]
            else:
                bucket.append(pre[nid])
            kids = tree_children(nid)
            children[nid] = kids
            if kids:
                child_depth = depth[nid] + 1
                for child in reversed(kids):
                    depth[child] = child_depth
                    parent[child] = nid
                    stack.append(child)
        # Preorder places a node's last child's subtree at the end of its
        # interval, so one reversed pass closes every interval.
        for nid in reversed(order):
            kids = children[nid]
            post[nid] = post[kids[-1]] if kids else pre[nid]
        self._pre = pre
        self._post = post
        self._order = order
        self._depth = depth
        self._labels = labels
        self._children = children
        self._parent = parent
        self._by_label = by_label
        self._paths: dict[int, tuple[str, ...]] = {tree.root: ()}
        self._shape: tuple | None = None
        self._shape_hash: int | None = None

    # ------------------------------------------------------------------
    # Snapshot identity
    # ------------------------------------------------------------------
    @property
    def tree(self) -> DataTree:
        return self._tree

    @property
    def root(self) -> int:
        return self._root

    @property
    def size(self) -> int:
        return len(self._order)

    @property
    def fresh(self) -> bool:
        """Does the snapshot still describe its tree exactly?"""
        return self._tree.version == self._built_version

    def covers(self, tree: DataTree) -> bool:
        """Is this a fresh snapshot of ``tree`` (identity, not equality)?"""
        return tree is self._tree and self.fresh

    def __contains__(self, nid: int) -> bool:
        return nid in self._pre

    # ------------------------------------------------------------------
    # O(1) structure lookups
    # ------------------------------------------------------------------
    def label(self, nid: int) -> str:
        try:
            return self._labels[nid]
        except KeyError:
            raise TreeError(f"node {nid} not in snapshot") from None

    def node(self, nid: int) -> Node:
        return Node(nid, self.label(nid))

    def children(self, nid: int) -> tuple[int, ...]:
        try:
            return self._children[nid]
        except KeyError:
            raise TreeError(f"node {nid} not in snapshot") from None

    def parent(self, nid: int) -> int | None:
        try:
            return self._parent[nid]
        except KeyError:
            raise TreeError(f"node {nid} not in snapshot") from None

    def depth(self, nid: int) -> int:
        try:
            return self._depth[nid]
        except KeyError:
            raise TreeError(f"node {nid} not in snapshot") from None

    def pre(self, nid: int) -> int:
        """Preorder (Euler-tour) number of ``nid``."""
        return self._pre[nid]

    def interval(self, nid: int) -> tuple[int, int]:
        """``[pre, post]`` — preorder numbers of the subtree at ``nid``."""
        return self._pre[nid], self._post[nid]

    def is_ancestor(self, anc: int, nid: int) -> bool:
        """Strict ancestry in O(1): interval containment."""
        return self._pre[anc] < self._pre[nid] <= self._post[anc]

    def in_subtree(self, nid: int, anchor: int) -> bool:
        """Is ``nid`` in the subtree rooted at ``anchor`` (self included)?"""
        return self._pre[anchor] <= self._pre[nid] <= self._post[anchor]

    def path_labels(self, nid: int) -> tuple[str, ...]:
        """Labels on the root-to-``nid`` path (root excluded) — the *word*
        of the node; memoised via the parent chain, O(n) total."""
        cached = self._paths.get(nid)
        if cached is not None:
            return cached
        chain: list[int] = []
        cur: int | None = nid
        while cur is not None and cur not in self._paths:
            chain.append(cur)
            cur = self._parent.get(cur)
        if cur is None and chain:
            raise TreeError(f"node {nid} not in snapshot")
        for node in reversed(chain):
            par = self._parent[node]
            assert par is not None
            self._paths[node] = self._paths[par] + (self._labels[node],)
        return self._paths[nid]

    # ------------------------------------------------------------------
    # Indexed candidate enumeration
    # ------------------------------------------------------------------
    def node_ids(self) -> tuple[int, ...]:
        """All nodes in document (preorder) order."""
        return tuple(self._order)

    def nodes_with_label(self, label: str) -> list[int]:
        """All nodes carrying ``label``, document order."""
        order = self._order
        return [order[p] for p in self._by_label.get(label, ())]

    def descendants(self, nid: int, include_self: bool = False) -> list[int]:
        """Strict descendants as a contiguous slice of the preorder array."""
        lo = self._pre[nid] + (0 if include_self else 1)
        return self._order[lo:self._post[nid] + 1]

    def descendants_with_label(self, label: str, anchor: int) -> list[int]:
        """Strict descendants of ``anchor`` labelled ``label``.

        Two bisections on the label's sorted preorder numbers — O(log n +
        answer) instead of scanning the whole subtree.
        """
        pres = self._by_label.get(label)
        if not pres:
            return []
        lo = bisect_right(pres, self._pre[anchor])
        hi = bisect_right(pres, self._post[anchor], lo=lo)
        order = self._order
        return [order[p] for p in pres[lo:hi]]

    def count_descendants_with_label(self, label: str, anchor: int) -> int:
        """Cardinality of :meth:`descendants_with_label`, O(log n)."""
        pres = self._by_label.get(label)
        if not pres:
            return 0
        lo = bisect_right(pres, self._pre[anchor])
        return bisect_right(pres, self._post[anchor], lo=lo) - lo

    def minimal_cover(self, nids) -> list[int]:
        """Drop every node lying in another given node's subtree.

        The survivors' descendant intervals are disjoint and cover exactly
        the union of the inputs' intervals — the right anchor set for a
        ``//`` step over a whole frontier.
        """
        survivors: list[int] = []
        covered = -1
        for nid in sorted(nids, key=self._pre.__getitem__):
            if self._pre[nid] > covered:
                survivors.append(nid)
                covered = self._post[nid]
        return survivors

    # ------------------------------------------------------------------
    # Canonical shape (iterative hasher)
    # ------------------------------------------------------------------
    def canonical_shape(self) -> tuple:
        """Canonical shape of the snapshot, iteratively folded and cached."""
        if self._shape is None:
            self._shape = iter_canonical_shape(self._root, self._labels,
                                               self._children)
            self._shape_hash = hash(self._shape)
        return self._shape

    def canonical_hash(self) -> int:
        """Hash of :meth:`canonical_shape` (computed once per snapshot)."""
        if self._shape_hash is None:
            self.canonical_shape()
        assert self._shape_hash is not None
        return self._shape_hash

    def __repr__(self) -> str:
        state = "fresh" if self.fresh else "STALE"
        return (f"TreeIndex(size={self.size}, root={self._root}, "
                f"labels={len(self._by_label)}, {state})")


__all__ = ["TreeIndex"]

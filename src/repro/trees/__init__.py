"""Unordered XML data trees with node identity (paper Definition 2.1)."""

from repro.trees.builders import Spec, branch, build, leaf, parse_tree
from repro.trees.index import TreeIndex
from repro.trees.node import Node, fresh_id, reset_ids
from repro.trees.ops import (
    FRESH_LABEL,
    collect_labels,
    copy_subtree,
    fresh_label_for,
    graft_at_root,
    prune_to_union,
    relabel_outside,
    remap_ids,
    replace_with_fresh_copy,
    restrict_labels,
    swap_ids,
)
from repro.trees.serialize import from_dict, to_dict, to_literal, to_xml
from repro.trees.tree import ROOT_LABEL, DataTree

__all__ = [
    "DataTree",
    "TreeIndex",
    "Node",
    "ROOT_LABEL",
    "FRESH_LABEL",
    "Spec",
    "branch",
    "build",
    "leaf",
    "parse_tree",
    "fresh_id",
    "reset_ids",
    "copy_subtree",
    "graft_at_root",
    "replace_with_fresh_copy",
    "remap_ids",
    "swap_ids",
    "fresh_label_for",
    "relabel_outside",
    "prune_to_union",
    "restrict_labels",
    "collect_labels",
    "to_literal",
    "to_dict",
    "from_dict",
    "to_xml",
]

"""Convenient construction of :class:`DataTree` instances.

Two styles are offered:

* a nested-call combinator (:func:`branch` / :func:`build`) used across the
  test-suite and the examples, e.g.::

      tree = build(
          branch("patient", branch("visit"), branch("clinicalTrial")),
          branch("patient", branch("visit")),
      )

* a compact literal parser (:func:`parse_tree`) for the string form
  ``"patient(visit, clinicalTrial(drug)), patient(visit)"`` — handy in
  doctests and benchmark configuration files.  Identifiers may be pinned
  with ``label#id``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ParseError
from repro.trees.tree import ROOT_LABEL, DataTree


@dataclass
class Spec:
    """A node specification: label, optional pinned id, child specs."""

    label: str
    nid: int | None = None
    kids: list["Spec"] = field(default_factory=list)


def branch(label: str, *kids: Spec, nid: int | None = None) -> Spec:
    """Describe one node with its children (combinator form)."""
    return Spec(label, nid, list(kids))


def leaf(label: str, nid: int | None = None) -> Spec:
    """Describe a childless node."""
    return Spec(label, nid, [])


def build(*top: Spec, root_label: str = ROOT_LABEL) -> DataTree:
    """Materialise a tree whose root has the given top-level children.

    Pinned identifiers are reserved up front so that fresh identifiers
    allocated for the unpinned nodes can never collide with them.
    """
    from repro.trees.node import GLOBAL_IDS

    def reserve(spec: Spec) -> None:
        if spec.nid is not None:
            GLOBAL_IDS.reserve_above(spec.nid)
        for kid in spec.kids:
            reserve(kid)

    for spec in top:
        reserve(spec)
    tree = DataTree(root_label)
    for spec in top:
        _attach(tree, tree.root, spec)
    return tree


def _attach(tree: DataTree, parent: int, spec: Spec) -> int:
    nid = tree.add_child(parent, spec.label, nid=spec.nid)
    for kid in spec.kids:
        _attach(tree, nid, kid)
    return nid


# ----------------------------------------------------------------------
# Literal parser
# ----------------------------------------------------------------------
class _TreeScanner:
    """Recursive-descent scanner for the compact tree literal syntax."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def error(self, message: str) -> ParseError:
        return ParseError(message, self.text, self.pos)

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def expect(self, char: str) -> None:
        self.skip_ws()
        if self.peek() != char:
            raise self.error(f"expected {char!r}")
        self.pos += 1

    def name(self) -> str:
        self.skip_ws()
        start = self.pos
        while self.pos < len(self.text) and (
            self.text[self.pos].isalnum() or self.text[self.pos] in "_-+"
        ):
            self.pos += 1
        if self.pos == start:
            raise self.error("expected a label")
        return self.text[start:self.pos]

    def spec(self) -> Spec:
        label = self.name()
        nid: int | None = None
        self.skip_ws()
        if self.peek() == "#":
            self.pos += 1
            digits = self.name()
            if not digits.isdigit():
                raise self.error("node id must be numeric")
            nid = int(digits)
        kids: list[Spec] = []
        self.skip_ws()
        if self.peek() == "(":
            self.pos += 1
            self.skip_ws()
            if self.peek() != ")":
                kids.append(self.spec())
                self.skip_ws()
                while self.peek() == ",":
                    self.pos += 1
                    kids.append(self.spec())
                    self.skip_ws()
            self.expect(")")
        return Spec(label, nid, kids)

    def top(self) -> list[Spec]:
        specs = [self.spec()]
        self.skip_ws()
        while self.peek() == ",":
            self.pos += 1
            specs.append(self.spec())
            self.skip_ws()
        if self.pos != len(self.text):
            raise self.error("trailing input")
        return specs


def parse_tree(text: str, root_label: str = ROOT_LABEL) -> DataTree:
    """Parse the compact literal form into a :class:`DataTree`.

    >>> t = parse_tree("a(b, c(d))")
    >>> sorted(n.label for n in t.nodes())
    ['a', 'b', 'c', 'd', 'root']
    """
    specs = _TreeScanner(text).top()
    return build(*specs, root_label=root_label)

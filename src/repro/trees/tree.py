"""Unordered data trees (Definition 2.1).

A :class:`DataTree` is a finite unordered tree whose nodes carry unique
identifiers and labels.  It is the single data substrate of the library:
XPath evaluation, pair validity, all counterexample constructions and all
reductions operate on it.

Design notes
------------
* Children are stored in insertion order purely for reproducible printing;
  the tree is semantically unordered and all algorithms treat it as such.
* The root is an ordinary node but the paper treats it specially: queries
  are anchored at it, predicates never apply to it, and its label never
  influences a query answer.  We still give it a label (default ``"root"``)
  so a tree is always a well-formed ``(T, lambda)`` pair.
* Structural mutation keeps parent/children maps consistent and validates
  against cycles; :meth:`validate` re-checks every invariant and is invoked
  liberally by the test suite.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import TreeError
from repro.trees.node import GLOBAL_IDS, Node, fresh_id

ROOT_LABEL = "root"


def iter_canonical_shape(root: int, labels: dict[int, str],
                         children: dict[int, list[int]] | dict[int, tuple[int, ...]]
                         ) -> tuple:
    """Canonical shape of the subtree at ``root``, computed without recursion.

    One preorder pass collects the subtree, then a reversed sweep (children
    always precede their parent in reversed preorder) folds shapes bottom-up.
    Shared by :meth:`DataTree.canonical_shape` and the
    :class:`repro.trees.index.TreeIndex` snapshot hasher.
    """
    order: list[int] = []
    stack = [root]
    while stack:
        nid = stack.pop()
        order.append(nid)
        stack.extend(children[nid])
    shapes: dict[int, tuple] = {}
    for nid in reversed(order):
        kids = sorted(shapes.pop(c) for c in children[nid])
        shapes[nid] = (labels[nid], tuple(kids))
    return shapes[root]


class DataTree:
    """A finite unordered tree over ``(id, label)`` nodes."""

    __slots__ = ("_labels", "_parent", "_children", "_root", "_version",
                 "_child_tuples", "_shape", "_shape_hash", "_shape_version")

    def __init__(self, root_label: str = ROOT_LABEL, root_id: int | None = None):
        rid = fresh_id() if root_id is None else root_id
        GLOBAL_IDS.reserve_above(rid)
        self._labels: dict[int, str] = {rid: root_label}
        self._parent: dict[int, int | None] = {rid: None}
        self._children: dict[int, list[int]] = {rid: []}
        self._root = rid
        self._version = 0
        self._child_tuples: dict[int, tuple[int, ...]] = {}
        self._shape: tuple | None = None
        self._shape_hash: int | None = None
        self._shape_version = -1

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def root(self) -> int:
        """Identifier of the root node."""
        return self._root

    @property
    def size(self) -> int:
        """Number of nodes, including the root."""
        return len(self._labels)

    @property
    def version(self) -> int:
        """Mutation counter: bumped by every structural change.

        Snapshots (:class:`repro.trees.index.TreeIndex`) record the version
        at build time and use it as a cheap staleness test — strictly finer
        than comparing sizes, since moves and relabels preserve the count.
        """
        return self._version

    def label(self, nid: int) -> str:
        """Label of node ``nid``."""
        try:
            return self._labels[nid]
        except KeyError:
            raise TreeError(f"node {nid} not in tree") from None

    def node(self, nid: int) -> Node:
        """The ``(id, label)`` pair for ``nid``."""
        return Node(nid, self.label(nid))

    def parent(self, nid: int) -> int | None:
        """Identifier of the parent of ``nid`` (``None`` for the root)."""
        try:
            return self._parent[nid]
        except KeyError:
            raise TreeError(f"node {nid} not in tree") from None

    def children(self, nid: int) -> tuple[int, ...]:
        """Identifiers of the children of ``nid``.

        The tuple is cached per node (hot loops call this constantly) and
        invalidated by the mutations that touch the node's child list.
        """
        cached = self._child_tuples.get(nid)
        if cached is not None:
            return cached
        try:
            result = tuple(self._children[nid])
        except KeyError:
            raise TreeError(f"node {nid} not in tree") from None
        self._child_tuples[nid] = result
        return result

    def _touch(self, *nids: int) -> None:
        """Invalidate caches after a mutation of the given child lists."""
        self._version += 1
        for nid in nids:
            self._child_tuples.pop(nid, None)

    def __contains__(self, nid: int) -> bool:
        return nid in self._labels

    def node_ids(self) -> Iterator[int]:
        """All node identifiers (document order: preorder)."""
        return self._preorder(self._root)

    def nodes(self) -> Iterator[Node]:
        """All nodes as ``(id, label)`` pairs, preorder."""
        for nid in self.node_ids():
            yield Node(nid, self._labels[nid])

    def _preorder(self, start: int) -> Iterator[int]:
        stack = [start]
        while stack:
            nid = stack.pop()
            yield nid
            stack.extend(reversed(self._children[nid]))

    def descendants(self, nid: int, include_self: bool = False) -> Iterator[int]:
        """Strict descendants of ``nid`` (preorder); optionally include it."""
        it = self._preorder(nid)
        first = next(it)
        if include_self:
            yield first
        yield from it

    def ancestors(self, nid: int, include_self: bool = False) -> Iterator[int]:
        """Ancestors of ``nid``, closest first, ending at the root."""
        if include_self:
            yield nid
        cur = self.parent(nid)
        while cur is not None:
            yield cur
            cur = self._parent[cur]

    def depth(self, nid: int) -> int:
        """Number of edges from the root to ``nid``."""
        return sum(1 for _ in self.ancestors(nid))

    def path_labels(self, nid: int) -> tuple[str, ...]:
        """Labels on the root-to-``nid`` path, root excluded.

        This is the *word* of the node used throughout the linear-fragment
        algorithms: for linear queries membership of a node depends only on
        this word.
        """
        labels = [self._labels[a] for a in self.ancestors(nid)]
        labels.reverse()
        labels = labels[1:] if labels else []  # drop the root label
        labels.append(self._labels[nid])
        if nid == self._root:
            return ()
        return tuple(labels)

    def is_ancestor(self, anc: int, nid: int) -> bool:
        """True when ``anc`` is a strict ancestor of ``nid``."""
        return any(a == anc for a in self.ancestors(nid))

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_child(self, parent: int, label: str, nid: int | None = None) -> int:
        """Attach a new leaf labelled ``label`` under ``parent``.

        Returns the identifier of the new node.  When ``nid`` is supplied it
        must be unused in this tree; the global allocator is bumped past it.
        """
        if parent not in self._labels:
            raise TreeError(f"parent {parent} not in tree")
        if nid is None:
            nid = fresh_id()
        else:
            if nid in self._labels:
                raise TreeError(f"node id {nid} already present")
            GLOBAL_IDS.reserve_above(nid)
        self._labels[nid] = label
        self._parent[nid] = parent
        self._children[nid] = []
        self._children[parent].append(nid)
        self._touch(parent)
        return nid

    def add_path(self, parent: int, labels: Iterable[str]) -> int:
        """Attach a fresh downward chain of nodes; return the deepest id."""
        cur = parent
        for label in labels:
            cur = self.add_child(cur, label)
        return cur

    def remove_subtree(self, nid: int) -> None:
        """Delete ``nid`` and its whole subtree."""
        if nid == self._root:
            raise TreeError("cannot remove the root")
        if nid not in self._labels:
            raise TreeError(f"node {nid} not in tree")
        doomed = list(self.descendants(nid, include_self=True))
        parent = self._parent[nid]
        assert parent is not None
        self._children[parent].remove(nid)
        for d in doomed:
            del self._labels[d]
            del self._parent[d]
            del self._children[d]
        self._touch(parent, *doomed)

    def move(self, nid: int, new_parent: int) -> None:
        """Re-attach the subtree rooted at ``nid`` under ``new_parent``.

        Node identifiers are preserved — this models the *move* updates of
        the paper's update language ([27]), under which a node may appear in
        a totally different part of the document after the update.
        """
        if nid == self._root:
            raise TreeError("cannot move the root")
        if nid not in self._labels:
            raise TreeError(f"node {nid} not in tree")
        if new_parent not in self._labels:
            raise TreeError(f"target parent {new_parent} not in tree")
        if nid == new_parent or self.is_ancestor(nid, new_parent):
            raise TreeError("cannot move a node under its own subtree")
        old_parent = self._parent[nid]
        assert old_parent is not None
        self._children[old_parent].remove(nid)
        self._parent[nid] = new_parent
        self._children[new_parent].append(nid)
        self._touch(old_parent, new_parent)

    def relabel_fresh(self, nid: int, label: str | None = None) -> int:
        """Replace node ``nid`` by a *fresh* node (new id, possibly new label).

        The paper's model has no label modification: changing a label means
        the old ``(id, label)`` node disappears and a new node takes its
        structural place.  Children are preserved.  Returns the new id.
        """
        if nid == self._root:
            raise TreeError("cannot relabel the root in place")
        new_id = fresh_id()
        new_label = self._labels[nid] if label is None else label
        parent = self._parent[nid]
        assert parent is not None
        idx = self._children[parent].index(nid)
        self._children[parent][idx] = new_id
        self._labels[new_id] = new_label
        self._parent[new_id] = parent
        self._children[new_id] = self._children.pop(nid)
        for child in self._children[new_id]:
            self._parent[child] = new_id
        del self._labels[nid]
        del self._parent[nid]
        self._touch(parent, nid)
        return new_id

    # ------------------------------------------------------------------
    # Copies and structural identity
    # ------------------------------------------------------------------
    def copy(self) -> "DataTree":
        """Deep copy preserving all identifiers."""
        clone = DataTree.__new__(DataTree)
        clone._labels = dict(self._labels)
        clone._parent = dict(self._parent)
        clone._children = {k: list(v) for k, v in self._children.items()}
        clone._root = self._root
        clone._version = 0
        clone._child_tuples = {}
        # The copy is structurally identical, so a fresh shape cache carries over.
        fresh_shape = self._shape_version == self._version
        clone._shape = self._shape if fresh_shape else None
        clone._shape_hash = self._shape_hash if fresh_shape else None
        clone._shape_version = 0 if fresh_shape else -1
        return clone

    def same_instance(self, other: "DataTree") -> bool:
        """True when both trees have identical nodes *and* shape.

        This is equality of instances in the paper's sense (same identifiers,
        labels and edges), not mere isomorphism.
        """
        if self._labels != other._labels or self._root != other._root:
            return False
        return all(
            sorted(self._children[n]) == sorted(other._children[n]) for n in self._labels
        )

    def canonical_shape(self, nid: int | None = None) -> tuple:
        """Canonical form of the subtree at ``nid`` ignoring identifiers.

        Two subtrees have equal canonical shapes iff they are isomorphic as
        labelled unordered trees.  Used for deduplication in enumeration
        engines and for hashing canonical models.  Computed iteratively (no
        recursion limit on deep chains); the whole-tree shape is cached and
        invalidated by mutation.
        """
        nid = self._root if nid is None else nid
        if nid == self._root and self._shape_version == self._version:
            assert self._shape is not None
            return self._shape
        shape = iter_canonical_shape(nid, self._labels, self._children)
        if nid == self._root:
            self._shape = shape
            self._shape_hash = hash(shape)
            self._shape_version = self._version
        return shape

    # ------------------------------------------------------------------
    # Validation & printing
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check all structural invariants; raise :class:`TreeError` if broken."""
        if self._root not in self._labels:
            raise TreeError("root missing")
        if self._parent[self._root] is not None:
            raise TreeError("root has a parent")
        seen = set()
        for nid in self._preorder(self._root):
            if nid in seen:
                raise TreeError(f"node {nid} reachable twice (cycle or shared child)")
            seen.add(nid)
            for child in self._children[nid]:
                if self._parent.get(child) != nid:
                    raise TreeError(f"parent pointer of {child} disagrees with child list")
        if seen != set(self._labels):
            raise TreeError("unreachable nodes present")
        if set(self._labels) != set(self._parent) or set(self._labels) != set(self._children):
            raise TreeError("internal maps out of sync")

    def pretty(self, show_ids: bool = True) -> str:
        """Human-readable indented rendering."""
        lines: list[str] = []

        def walk(nid: int, depth: int) -> None:
            tag = f"{self._labels[nid]}#{nid}" if show_ids else self._labels[nid]
            lines.append("  " * depth + tag)
            for child in self._children[nid]:
                walk(child, depth + 1)

        walk(self._root, 0)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"DataTree(size={self.size}, root={self._root})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DataTree):
            return NotImplemented
        return self.same_instance(other)

    def __hash__(self) -> int:
        """Hash through the cached canonical shape.

        Consistent with :meth:`__eq__` (equal instances share root id and
        shape) and O(1) on repeated calls on an unmutated tree, instead of
        rebuilding a frozenset of all labels every call.
        """
        if self._shape_version != self._version:
            self.canonical_shape()
        assert self._shape_hash is not None
        return hash((self._root, self._shape_hash))

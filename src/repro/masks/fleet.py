"""Batched constraint checking over a fleet of documents.

A :class:`FleetEvaluator` adopts *many* small documents under **one**
shared compiled constraint set and checks them together: every
constraint range is evaluated for the whole fleet in one kernel call
(:class:`~repro.masks.base.FleetKernel`), baselines are packed into
backend mask rows, and the per-constraint compares run row-wise across
all documents at once.  With the numpy backend the entire check is a
handful of array ops; with the big-int backend it is exactly the
per-document semantics of the enforcement stream — decisions are
checksum-identical across backends by construction and pinned by the
Hypothesis cross-backend suite.

Writes arrive in *epochs*: :meth:`submit_epoch` applies a batch of
operations across any subset of the fleet, runs **one** batched check,
and rolls back every violating document through its undo journal (the
pre-epoch state was valid, so a rollback needs no re-check).  Between
epochs each document's baseline masks are delta-maintained through the
shared :class:`~repro.masks.baseline.MaskedBaseline` /
:class:`~repro.trees.index.EditDelta` patch path — the same machinery
the per-op stream uses, at fleet granularity.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Iterable, Mapping, Sequence

from repro.obs import COUNT_BUCKETS, MetricsRegistry
from repro.obs import registry as _obs_registry
from repro.constraints.model import (
    ConstraintSet,
    ConstraintType,
    UpdateConstraint,
    constraint_set,
)
from repro.constraints.validity import BaselineValidity, Violation
from repro.errors import StreamError, TreeError
from repro.masks.base import MaskBackend, MaskMatrix
from repro.masks.baseline import MaskedBaseline, diff_violation
from repro.stream.ops import (
    AddLeaf,
    Move,
    RemoveSubtree,
    StreamOp,
    UPDATE_OPS,
)
from repro.trees.tree import DataTree
from repro.xpath.ast import Pattern, normalize
from repro.xpath.bitset import BitsetEvaluator

_FOLD = 1_000_003
_MOD = 2 ** 61

# Undo-journal entry tags (inverse edits, replayed newest-first) — the
# enforcement stream's journal shape, at epoch granularity.
_UNDO_MOVE = "move"      # (tag, nid, old_parent)
_UNDO_UNADD = "unadd"    # (tag, nid)
_UNDO_REVIVE = "revive"  # (tag, ((nid, parent, label), ...) preorder)


def _crc(text: str) -> int:
    return zlib.crc32(text.encode())


def _violation_code(violation: Violation) -> int:
    """Machine-independent fold of one witness (ids, labels, constraint)."""
    constraint = violation.constraint
    code = _crc(f"{constraint.range}|{constraint.type.value}")
    for salt, nodes in ((3, violation.removed), (7, violation.inserted)):
        code = (code * _FOLD + salt + len(nodes)) % _MOD
        for nid, label in sorted((n.nid, n.label) for n in nodes):
            code = (code * _FOLD + nid * 31 + _crc(label)) % _MOD
    return code


@dataclass(frozen=True)
class FleetReport:
    """One batched validity check over the whole fleet.

    ``violations`` holds witnesses for violating documents only (keyed
    by document position); ``checksum`` folds every document's verdict
    and witness set in fleet order — identical across backends and
    machines for the same fleet state.
    """

    backend: str
    docs: int
    constraints: int
    violating: tuple[int, ...]
    violations: Mapping[int, tuple[Violation, ...]]
    checksum: int

    @property
    def ok(self) -> bool:
        return not self.violating

    def __str__(self) -> str:
        return (f"fleet check [{self.backend}]: {self.docs} docs x "
                f"{self.constraints} constraints, "
                f"{len(self.violating)} violating")


@dataclass(frozen=True)
class EpochReport:
    """One write epoch: what was applied, what was rolled back.

    ``rejected`` documents violated the policy and were rolled back to
    their pre-epoch state; ``structural`` documents never finished
    applying (a structurally invalid op — unknown node, root move —
    rejects the document's whole epoch, message recorded).  ``checksum``
    folds the epoch's per-document outcomes, witnesses included.
    """

    epoch: int
    edited: tuple[int, ...]
    rejected: tuple[int, ...]
    structural: Mapping[int, str]
    violations: Mapping[int, tuple[Violation, ...]]
    checksum: int

    @property
    def accepted(self) -> tuple[int, ...]:
        bad = set(self.rejected)
        return tuple(d for d in self.edited if d not in bad)

    def __str__(self) -> str:
        return (f"epoch {self.epoch}: {len(self.edited)} docs edited, "
                f"{len(self.accepted)} accepted, "
                f"{len(self.rejected)} rolled back")


class _FleetDoc:
    """One adopted document: its tree, live snapshot and baselines."""

    __slots__ = ("name", "tree", "ctx", "masked")

    def __init__(self, name: str, tree: DataTree,
                 constraints: ConstraintSet):
        self.name = name
        self.tree = tree
        self.ctx = BitsetEvaluator.for_tree(tree)
        checker = BaselineValidity(constraints, tree, context=self.ctx)
        self.masked = MaskedBaseline(checker, self.ctx)


class FleetEvaluator:
    """Thousands of small documents, one shared constraint set.

    Parameters:
        constraints: the shared policy (any :func:`constraint_set` form).
        trees: the documents — **adopted** and mutated in place by
            epochs, exactly like handing each to a stream enforcer.
        backend: a :class:`~repro.masks.base.MaskBackend`, a backend
            name (``"bigint"`` / ``"numpy"``), or ``None`` for the
            environment-driven default (:func:`repro.masks.get_backend`).
        names: optional per-document names for reports (defaults to
            ``doc0``, ``doc1``, …).
        metrics: the registry epoch timings and counters land in
            (``None`` = the process-global :func:`repro.obs.registry`;
            pass :data:`repro.obs.NULL` to disable).
    """

    def __init__(self,
                 constraints: ConstraintSet | Iterable[UpdateConstraint],
                 trees: Sequence[DataTree], *,
                 backend: MaskBackend | str | None = None,
                 names: Sequence[str] | None = None,
                 metrics: MetricsRegistry | None = None):
        if not isinstance(constraints, ConstraintSet):
            constraints = constraint_set(*constraints)
        constraints.require_concrete()
        trees = list(trees)
        if not trees:
            raise ValueError("a fleet needs at least one document")
        if len({id(tree) for tree in trees}) != len(trees):
            raise ValueError("a fleet adopts each document once; the same "
                             "tree object appears twice")
        if names is None:
            names = [f"doc{i}" for i in range(len(trees))]
        elif len(names) != len(trees):
            raise ValueError(f"{len(names)} names for {len(trees)} documents")
        if isinstance(backend, MaskBackend):
            self._backend = backend
        else:
            from repro.masks import get_backend
            self._backend = get_backend(backend)
        self._constraints = constraints
        self._docs = [_FleetDoc(name, tree, constraints)
                      for name, tree in zip(names, trees)]
        self._kernel = self._backend.kernel([fd.ctx for fd in self._docs])
        # One canonical range per constraint, deduplicated in order: one
        # kernel sweep per distinct range per check, like the stream's
        # masked baseline.
        self._range_of: list[Pattern] = [normalize(c.range)
                                         for c in constraints]
        self._ranges: list[Pattern] = list(dict.fromkeys(self._range_of))
        self._epoch = 0
        self._checksum = 0
        self._last_report: FleetReport | None = None
        m = metrics if metrics is not None else _obs_registry()
        name = self._backend.name
        self._m_check = m.histogram("fleet.check_seconds", backend=name)
        self._m_apply = m.histogram("fleet.apply_seconds", backend=name)
        self._m_epochs = m.counter("fleet.epochs_total", backend=name)
        self._m_docs_edited = m.counter("fleet.docs_edited_total",
                                        backend=name)
        self._m_docs_rejected = m.counter("fleet.docs_rejected_total",
                                          backend=name)
        self._m_docs_per_epoch = m.histogram("fleet.docs_per_epoch",
                                             buckets=COUNT_BUCKETS,
                                             backend=name)

    # ------------------------------------------------------------------
    # State surface
    # ------------------------------------------------------------------
    @property
    def backend(self) -> str:
        return self._backend.name

    @property
    def constraints(self) -> ConstraintSet:
        return self._constraints

    @property
    def size(self) -> int:
        return len(self._docs)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(fd.name for fd in self._docs)

    @property
    def epoch(self) -> int:
        return self._epoch

    @property
    def checksum(self) -> int:
        """Running fold of every epoch report's checksum, in order."""
        return self._checksum

    def tree(self, doc: int) -> DataTree:
        return self._docs[doc].tree

    def answer_rows(self, pattern: Pattern) -> list[int]:
        """``q(root, J_d)`` for every document, as big-int masks (the
        cross-backend test oracle)."""
        matrix = self._kernel.evaluate(normalize(pattern))
        return self._backend.unpack_rows(matrix)

    # ------------------------------------------------------------------
    # The batched check
    # ------------------------------------------------------------------
    def check(self, *, force: bool = False) -> FleetReport:
        """One batched validity verdict for the whole fleet.

        Clean fleets return the cached report; ``force=True`` re-runs
        the sweeps and compares regardless (the benchmark's serving
        cost).
        """
        if self._last_report is not None and not force:
            return self._last_report
        check_started = perf_counter()
        backend = self._backend
        kernel = self._kernel
        swept: dict[Pattern, MaskMatrix] = {
            r: kernel.evaluate(r) for r in self._ranges}
        words = kernel.words
        entries = [fd.masked.entries() for fd in self._docs]
        per_doc: dict[int, list[Violation]] = {}
        for k, constraint in enumerate(self._constraints):
            base_rows = [doc_entries[k][2] for doc_entries in entries]
            base = backend.pack_rows(base_rows, words)
            answers = swept[self._range_of[k]]
            if constraint.type is ConstraintType.NO_REMOVE:
                diff = backend.and_not(base, answers)
                bad = set(backend.nonzero_rows(diff))
                bad.update(d for d, doc_entries in enumerate(entries)
                           if doc_entries[k][3])
            else:
                diff = backend.and_not(answers, base)
                bad = set(backend.nonzero_rows(diff))
            for d in sorted(bad):
                _, labels, base_mask, missing = entries[d][k]
                violation = diff_violation(
                    constraint, labels, base_mask, missing,
                    backend.row_int(answers, d), self._docs[d].ctx.index)
                if violation is not None:  # pragma: no cover - diff found
                    per_doc.setdefault(d, []).append(violation)
        violating = tuple(sorted(per_doc))
        report = FleetReport(
            backend=backend.name, docs=len(self._docs),
            constraints=len(self._constraints), violating=violating,
            violations={d: tuple(vs) for d, vs in per_doc.items()},
            checksum=self._fold_check(per_doc))
        self._last_report = report
        self._m_check.observe(perf_counter() - check_started)
        return report

    def _fold_check(self, per_doc: Mapping[int, list[Violation]]) -> int:
        total = 1
        for d in range(len(self._docs)):
            violations = per_doc.get(d, ())
            total = (total * _FOLD + 9176 + len(violations)) % _MOD
            for violation in violations:
                total = (total * _FOLD + _violation_code(violation)) % _MOD
        return total

    def violations(self, doc: int) -> tuple[Violation, ...]:
        """One document's standing witnesses (the per-doc reference path)."""
        return self._docs[doc].masked.violations()

    # ------------------------------------------------------------------
    # Write epochs
    # ------------------------------------------------------------------
    def submit_epoch(self, edits: Mapping[int, Sequence[StreamOp]]
                     ) -> EpochReport:
        """Apply a batch of per-document operations, check once, roll
        back violating documents.

        ``edits`` maps document position to that document's operations
        for this epoch, applied in order.  Epochs *are* the transaction
        brackets — begin/commit/rollback markers are a
        :class:`~repro.errors.StreamError`.  A structurally invalid op
        rejects its document's whole epoch immediately (applied prefix
        undone); all other edited documents are checked together and
        violating ones rolled back to their pre-epoch state.
        """
        self._epoch += 1
        self._m_epochs.inc()
        edited = tuple(sorted(edits))
        self._m_docs_edited.inc(len(edited))
        self._m_docs_per_epoch.observe(float(len(edited)))
        apply_started = perf_counter()
        journals: dict[int, list[tuple[Any, ...]]] = {}
        structural: dict[int, str] = {}
        for doc in edited:
            if not 0 <= doc < len(self._docs):
                raise ValueError(f"no document at position {doc} "
                                 f"(fleet of {len(self._docs)})")
            journal: list[tuple[Any, ...]] = []
            try:
                for op in edits[doc]:
                    if not isinstance(op, UPDATE_OPS):
                        raise StreamError(
                            f"epochs are the fleet's transaction brackets; "
                            f"marker {op!r} is not a fleet operation")
                    journal.append(self._perform(doc, op))
            except TreeError as err:
                self._undo(doc, journal)
                structural[doc] = f"structural error: {err}"
                continue
            journals[doc] = journal
        self._m_apply.observe(perf_counter() - apply_started)
        if journals:
            self._last_report = None
        report = self.check()
        violations: dict[int, tuple[Violation, ...]] = {}
        rejected: list[int] = []
        for doc in report.violating:
            violations[doc] = report.violations[doc]
            self._undo(doc, journals.get(doc, []))
            rejected.append(doc)
        rejected.extend(structural)
        self._m_docs_rejected.inc(len(rejected))
        if report.violating:
            # The rollbacks restored a valid fleet; the next check must
            # not serve the pre-rollback verdicts.
            self._last_report = None
        epoch_report = EpochReport(
            epoch=self._epoch, edited=edited,
            rejected=tuple(sorted(rejected)), structural=structural,
            violations=violations,
            checksum=self._fold_epoch(edited, rejected, structural,
                                      violations))
        self._checksum = (self._checksum * _FOLD
                          + epoch_report.checksum) % _MOD
        return epoch_report

    def _fold_epoch(self, edited: tuple[int, ...], rejected: list[int],
                    structural: Mapping[int, str],
                    violations: Mapping[int, tuple[Violation, ...]]) -> int:
        bad = set(rejected)
        total = (self._epoch * 8191 + len(edited)) % _MOD
        for doc in edited:
            total = (total * _FOLD + doc * 2 + (doc in bad)) % _MOD
            for violation in violations.get(doc, ()):
                total = (total * _FOLD + _violation_code(violation)) % _MOD
            note = structural.get(doc)
            if note is not None:
                total = (total * _FOLD + _crc(note)) % _MOD
        return total

    # ------------------------------------------------------------------
    # Edit/undo primitives (the stream journal's shape)
    # ------------------------------------------------------------------
    def _perform(self, doc: int, op: StreamOp) -> tuple[Any, ...]:
        fd = self._docs[doc]
        ctx, tree = fd.ctx, fd.tree
        self._last_report = None
        self._kernel.invalidate(doc)
        if isinstance(op, AddLeaf):
            nid = ctx.apply_add_leaf(op.parent, op.label, nid=op.nid)
            return (_UNDO_UNADD, nid)
        if isinstance(op, Move):
            old_parent = tree.parent(op.nid)
            if old_parent is None:
                raise TreeError("cannot move the root")
            ctx.apply_move(op.nid, op.new_parent)
            return (_UNDO_MOVE, op.nid, old_parent)
        if isinstance(op, RemoveSubtree):
            if op.nid not in tree:
                raise TreeError(f"node {op.nid} not in tree")
            spec = tuple((n, tree.parent(n), tree.label(n))
                         for n in tree.descendants(op.nid, include_self=True))
            ctx.apply_remove_subtree(op.nid)
            return (_UNDO_REVIVE, spec)
        raise StreamError(f"unknown fleet operation {op!r}")

    def _undo(self, doc: int, journal: Sequence[tuple[Any, ...]]) -> None:
        ctx = self._docs[doc].ctx
        self._kernel.invalidate(doc)
        for entry in reversed(journal):
            tag = entry[0]
            if tag == _UNDO_MOVE:
                ctx.apply_move(entry[1], entry[2])
            elif tag == _UNDO_UNADD:
                ctx.apply_remove_subtree(entry[1])
            else:
                for nid, parent, label in entry[1]:
                    ctx.apply_add_leaf(parent, label, nid=nid)

    def __repr__(self) -> str:
        return (f"FleetEvaluator({len(self._docs)} docs, "
                f"{len(self._constraints)} constraints, "
                f"backend={self.backend}, epoch {self._epoch})")


__all__ = ["FleetEvaluator", "FleetReport", "EpochReport"]

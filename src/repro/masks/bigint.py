"""The big-int mask backend: rows are Python ints, loops are per-row.

This module also owns the shared big-int mask *helpers* — slot decoding
through a per-byte table, byte views for O(1) membership tests — that
the single-document :class:`~repro.xpath.bitset.BitsetEvaluator` hot
paths use (re-exported there for compatibility).  The backend itself is
the reference semantics of the fleet check: its kernel simply runs each
document's own bitset sweep, so a numpy-backend discrepancy is always a
numpy bug, never an open question.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

from repro.masks.base import FleetKernel, MaskBackend
from repro.xpath.ast import Pattern

_BIT = tuple(1 << b for b in range(8))


# Per-byte decode table: byte value -> bit positions set in it.  One
# ``int.to_bytes`` conversion turns slot extraction into a C-level byte
# scan with table lookups — O(words + answers) instead of the bit-kernel
# loop's O(answers * words) repeated big-int ``mask & -mask`` arithmetic.
_BYTE_SLOTS: tuple[tuple[int, ...], ...] = tuple(
    tuple(b for b in range(8) if byte >> b & 1) for byte in range(256))


def iter_slots(mask: int) -> Iterator[int]:
    """Slots (bit positions) of a mask, ascending — document order.

    Batch-decoded through :data:`_BYTE_SLOTS`; on >10k-node documents this
    is what keeps whole-mask extraction off the profile (see the
    ``decoder`` row of ``benchmarks/bench_stream.py``).
    """
    offset = 0
    for byte in mask.to_bytes((mask.bit_length() + 7) >> 3, "little"):
        if byte:
            for b in _BYTE_SLOTS[byte]:
                yield offset + b
        offset += 8


def slots_of(mask: int) -> list[int]:
    """All slots of a mask as a list (the loop-free twin of
    :func:`iter_slots` for callers that consume the whole answer)."""
    out: list[int] = []
    offset = 0
    for byte in mask.to_bytes((mask.bit_length() + 7) >> 3, "little"):
        if byte:
            out += [offset + b for b in _BYTE_SLOTS[byte]]
        offset += 8
    return out


def byte_view(mask: int) -> bytes:
    """The mask as bytes: O(1) per-slot membership tests against big masks
    (``view[s >> 3] & _BIT[s & 7]``) instead of an O(words) shift each."""
    return mask.to_bytes((mask.bit_length() + 7) >> 3, "little")


class _BigIntKernel(FleetKernel):
    """Per-document sweeps through each context's own bitset evaluator.

    There is nothing to cache fleet-side: every context delta-maintains
    its predicate masks itself, so ``invalidate`` is a no-op and an
    evaluation is one ``evaluate_mask`` call per document.
    """

    __slots__ = ("_contexts",)

    def __init__(self, contexts: Sequence[Any]):
        self._contexts = list(contexts)

    def evaluate(self, pattern: Pattern) -> list[int]:
        return [ctx.evaluate_mask(pattern) for ctx in self._contexts]

    def invalidate(self, doc: int) -> None:
        pass

    @property
    def words(self) -> int:
        return 0


class BigIntBackend(MaskBackend):
    """Rows are Python big-ints; the exact single-document semantics."""

    name = "bigint"

    def kernel(self, contexts: Sequence[Any]) -> FleetKernel:
        return _BigIntKernel(contexts)

    def pack_rows(self, rows: Sequence[int], words: int) -> list[int]:
        if words:
            limit = 1 << (words * 64)
            for row in rows:
                if row >= limit:
                    raise OverflowError(
                        f"mask of {row.bit_length()} bits exceeds the "
                        f"{words}-word row width")
        return list(rows)

    def unpack_rows(self, matrix: list[int]) -> list[int]:
        return list(matrix)

    def row_int(self, matrix: list[int], row: int) -> int:
        return matrix[row]

    def and_not(self, a: list[int], b: list[int]) -> list[int]:
        return [x & ~y for x, y in zip(a, b)]

    def nonzero_rows(self, matrix: list[int]) -> list[int]:
        return [i for i, row in enumerate(matrix) if row]

    def popcount_rows(self, matrix: list[int]) -> list[int]:
        return [row.bit_count() for row in matrix]


__all__ = ["BigIntBackend", "iter_slots", "slots_of", "byte_view"]

"""Pluggable mask backends for bitset evaluation at fleet scale.

A *mask backend* decides how per-document slot masks are represented
and compared:

* ``bigint`` — Python big-ints, the exact reference semantics of the
  single-document evaluator.  Always available.
* ``numpy`` — the whole fleet packed as ``uint64`` rows of one 2-D
  array, pattern sweeps and baseline compares vectorized across all
  documents at once.  Optional: selected only when numpy imports.

Selection goes through :func:`get_backend` — pass a name, set the
``REPRO_MASK_BACKEND`` environment variable, or take the default
(``auto``: numpy when importable, big-int otherwise).  Asking for
``numpy`` *explicitly* when it cannot import is a
:class:`~repro.errors.MaskBackendError`; ``auto`` degrades to big-int,
counting each fallback in ``masks.backend_fallback_total`` and logging
once.
Decisions are checksum-identical across backends by construction (the
Hypothesis cross-backend suite pins this).

Heavy submodules (the fleet evaluator, the baseline masks, the numpy
kernel) load lazily: :mod:`repro.xpath.bitset` imports the big-int
helpers from here at interpreter startup, and eagerly importing
:mod:`repro.masks.fleet` from that path would cycle back into the
half-initialised stream engine.
"""

from __future__ import annotations

import importlib
import importlib.util
import logging
import os
from typing import TYPE_CHECKING, Any

from repro.errors import MaskBackendError
from repro.masks.base import FleetKernel, MaskBackend, MaskMatrix
from repro.masks.bigint import BigIntBackend, byte_view, iter_slots, slots_of

if TYPE_CHECKING:
    from repro.masks.baseline import BaselineEntry, MaskedBaseline
    from repro.masks.fleet import EpochReport, FleetEvaluator, FleetReport
    from repro.masks.np_backend import NumpyBackend

#: Environment variable naming the default backend (``bigint`` /
#: ``numpy`` / ``auto``).
BACKEND_ENV = "REPRO_MASK_BACKEND"

_LAZY = {
    "MaskedBaseline": ("repro.masks.baseline", "MaskedBaseline"),
    "BaselineEntry": ("repro.masks.baseline", "BaselineEntry"),
    "diff_violation": ("repro.masks.baseline", "diff_violation"),
    "FleetEvaluator": ("repro.masks.fleet", "FleetEvaluator"),
    "FleetReport": ("repro.masks.fleet", "FleetReport"),
    "EpochReport": ("repro.masks.fleet", "EpochReport"),
    "NumpyBackend": ("repro.masks.np_backend", "NumpyBackend"),
}


def __getattr__(name: str) -> Any:
    try:
        module, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}") from None
    return getattr(importlib.import_module(module), attr)


_logger = logging.getLogger("repro.masks")
_fallback_logged = False


def _note_auto_fallback(err: ImportError) -> None:
    """Make the silent ``auto`` → big-int degradation observable.

    Every fallback resolution bumps ``masks.backend_fallback_total`` in
    the process-global registry (so the ``metrics`` snapshot shows a
    fleet quietly running on the reference backend), and the *first* one
    also logs — once per process, not once per ``get_backend`` call.
    """
    global _fallback_logged
    from repro.obs import registry as _obs_registry
    _obs_registry().counter("masks.backend_fallback_total").inc()
    if not _fallback_logged:
        _fallback_logged = True
        _logger.warning(
            "numpy mask backend unavailable (%s); falling back to the "
            "big-int reference backend — set %s=bigint to silence, or "
            "%s=numpy to make this an error", err, BACKEND_ENV, BACKEND_ENV)


def numpy_available() -> bool:
    """Can the numpy backend be selected on this interpreter?"""
    return importlib.util.find_spec("numpy") is not None


def available_backends() -> tuple[str, ...]:
    """The selectable backend names, reference semantics first."""
    if numpy_available():
        return ("bigint", "numpy")
    return ("bigint",)


def get_backend(name: str | None = None) -> MaskBackend:
    """Resolve a mask backend by name.

    ``name=None`` consults :data:`BACKEND_ENV`, defaulting to ``auto``.
    ``auto`` prefers numpy and falls back to big-int when numpy is
    absent (or fails to import, e.g. on a big-endian host) — observable,
    not silent: every fallback bumps ``masks.backend_fallback_total``
    and the first logs a warning.  Naming ``numpy`` explicitly makes
    that failure a loud :class:`~repro.errors.MaskBackendError` instead.
    """
    if name is None:
        name = os.environ.get(BACKEND_ENV) or "auto"
    name = name.strip().lower()
    if name == "bigint":
        return BigIntBackend()
    if name == "numpy":
        try:
            from repro.masks.np_backend import NumpyBackend
        except ImportError as err:
            raise MaskBackendError(
                f"the numpy mask backend is unavailable: {err}") from err
        return NumpyBackend()
    if name == "auto":
        try:
            from repro.masks.np_backend import NumpyBackend
        except ImportError as err:
            _note_auto_fallback(err)
            return BigIntBackend()
        return NumpyBackend()
    raise MaskBackendError(
        f"unknown mask backend {name!r} (expected one of: bigint, numpy, "
        f"auto)")


__all__ = [
    "BACKEND_ENV",
    "BaselineEntry",
    "BigIntBackend",
    "EpochReport",
    "FleetEvaluator",
    "FleetKernel",
    "FleetReport",
    "MaskBackend",
    "MaskBackendError",
    "MaskMatrix",
    "MaskedBaseline",
    "NumpyBackend",
    "available_backends",
    "byte_view",
    "diff_violation",
    "get_backend",
    "iter_slots",
    "numpy_available",
    "slots_of",
]

"""The numpy mask backend: the whole fleet as one 2-D ``uint64`` array.

Importing this module requires numpy (and a little-endian host — the
packed rows are read back as ``int.from_bytes(..., "little")``); go
through :func:`repro.masks.get_backend` for guarded selection with
automatic big-int fallback.

The kernel flattens every document of the fleet into one concatenated
preorder node table — per node its gapped slot, interned label code,
parent position and subtree-end position (:meth:`~repro.trees.index.
TreeIndex.mask_export`) — and evaluates a canonical tree pattern for
*all* documents at once:

* a ``/`` predicate ("has a matching child") is one scatter of the
  matching nodes' parent positions;
* a ``//`` predicate ("has a matching strict descendant") is one cumsum
  over the match flags compared at subtree ends;
* a ``/`` pattern step is one gather of the frontier through the parent
  array;
* a ``//`` pattern step is one running maximum over frontier subtree
  ends — interval nesting makes "some earlier frontier interval still
  covers me" exactly strict-descendant-of-the-frontier, and document
  segments cannot leak into each other because a subtree end never
  crosses its document's boundary.

The resulting frontier flags scatter into per-document bit rows
(``np.packbits`` with little-endian bit order matches the big-int slot
numbering), so the per-constraint baseline compares of the fleet check
run as row-wise array ops.  Documents are re-extracted only when their
snapshot revision moved; pattern/predicate flag arrays are cached until
any document changes.
"""

from __future__ import annotations

import sys
from typing import Any, Sequence

import numpy as np

from repro.masks.base import FleetKernel, MaskBackend
from repro.xpath.ast import Axis, Pattern, Pred, normalize_preds

if sys.byteorder != "little":  # pragma: no cover - exotic platforms
    raise ImportError("the numpy mask backend packs rows little-endian and "
                      "requires a little-endian host")

_NDArray = Any  # numpy's own annotations stay loose; so do ours


def _row_bytes(row: _NDArray) -> bytes:
    return bytes(row.tobytes())


class _NumpyKernel(FleetKernel):
    """Concatenated-fleet pattern evaluation (see the module docstring)."""

    __slots__ = ("_contexts", "_revs", "_docs", "_dirty", "_codes",
                 "_ndocs", "_words", "_starts", "_doc_sizes",
                 "_g_pre", "_g_code", "_g_par", "_g_send", "_g_rowbit",
                 "_par_valid", "_label_flags", "_pred_flags", "_stale")

    def __init__(self, contexts: Sequence[Any]):
        self._contexts = list(contexts)
        self._ndocs = len(self._contexts)
        self._revs: list[int | None] = [None] * self._ndocs
        # Per doc: (pres, posts, codes, parent_pos) int64 arrays.
        self._docs: list[tuple[_NDArray, _NDArray, _NDArray, _NDArray] | None]
        self._docs = [None] * self._ndocs
        self._dirty: set[int] = set(range(self._ndocs))
        self._codes: dict[str, int] = {}
        self._words = 0
        self._stale = True
        self._label_flags: dict[str | None, _NDArray] = {}
        self._pred_flags: dict[Pred, _NDArray] = {}

    # -- structure maintenance ----------------------------------------
    def invalidate(self, doc: int) -> None:
        self._dirty.add(doc)
        self._stale = True

    @property
    def words(self) -> int:
        return self._words

    def _code(self, label: str) -> int:
        code = self._codes.get(label)
        if code is None:
            code = len(self._codes)
            self._codes[label] = code
        return code

    def _extract(self, doc: int) -> None:
        idx = self._contexts[doc].index
        pres, posts, labels, parent_pos = idx.mask_export()
        codes = np.fromiter((self._code(lab) for lab in labels),
                            dtype=np.int64, count=len(labels))
        self._docs[doc] = (np.asarray(pres, dtype=np.int64),
                           np.asarray(posts, dtype=np.int64),
                           codes,
                           np.asarray(parent_pos, dtype=np.int64))
        self._revs[doc] = idx.revision

    def _refresh(self) -> None:
        changed = False
        for doc, ctx in enumerate(self._contexts):
            if (doc in self._dirty or self._docs[doc] is None
                    or self._revs[doc] != ctx.index.revision):
                self._extract(doc)
                changed = True
        self._dirty.clear()
        if not changed and not self._stale:
            return
        self._stale = False
        self._label_flags.clear()
        self._pred_flags.clear()
        docs = [d for d in self._docs if d is not None]
        sizes = np.asarray([len(d[0]) for d in docs], dtype=np.int64)
        self._doc_sizes = sizes
        starts = np.zeros(self._ndocs, dtype=np.int64)
        np.cumsum(sizes[:-1], out=starts[1:])
        self._starts = starts
        self._g_pre = np.concatenate([d[0] for d in docs])
        self._g_code = np.concatenate([d[2] for d in docs])
        self._g_par = np.concatenate(
            [np.where(d[3] >= 0, d[3] + off, -1)
             for d, off in zip(docs, starts)])
        # Subtree end = position of the last node whose slot is <= post;
        # slots ascend in preorder, so this is one searchsorted per doc.
        self._g_send = np.concatenate(
            [np.searchsorted(d[0], d[1], side="right") - 1 + off
             for d, off in zip(docs, starts)])
        self._par_valid = self._g_par >= 0
        bits = int(max(int(d[0][-1]) for d in docs)) + 1
        self._words = (bits + 63) >> 6
        width = self._words << 6
        doc_of = np.repeat(np.arange(self._ndocs, dtype=np.int64), sizes)
        self._g_rowbit = self._g_pre + doc_of * width

    # -- flag-array primitives ----------------------------------------
    def _label_flag(self, label: str | None) -> _NDArray:
        cached = self._label_flags.get(label)
        if cached is None:
            if label is None:
                cached = np.ones(len(self._g_pre), dtype=bool)
            else:
                code = self._codes.get(label)
                if code is None:
                    cached = np.zeros(len(self._g_pre), dtype=bool)
                else:
                    cached = self._g_code == code
            self._label_flags[label] = cached
        return cached

    def _pred_flag(self, pred: Pred) -> _NDArray:
        """Flags of every node where the canonical predicate holds —
        the vectorized twin of ``BitsetEvaluator._pred_mask``."""
        cached = self._pred_flags.get(pred)
        if cached is not None:
            return cached
        target = self._label_flag(pred.label)
        for sub in pred.children:
            target = target & self._pred_flag(sub)
        n = len(self._g_pre)
        if pred.axis is Axis.CHILD:
            holds = np.zeros(n, dtype=bool)
            parents = self._g_par[np.flatnonzero(target)]
            holds[parents[parents >= 0]] = True
        else:
            counts = np.cumsum(target, dtype=np.int64)
            holds = (counts[self._g_send] - counts) > 0
        self._pred_flags[pred] = holds
        return holds

    def _step_test(self, label: str | None, preds: tuple[Pred, ...]) -> _NDArray:
        test = self._label_flag(label)
        for p in preds:
            if not test.any():
                break
            test = test & self._pred_flag(normalize_preds((p,))[0])
        return test

    # -- pattern evaluation -------------------------------------------
    def evaluate(self, pattern: Pattern) -> _NDArray:
        self._refresh()
        n = len(self._g_pre)
        frontier = np.zeros(n, dtype=bool)
        frontier[self._starts] = True  # every document's root
        for step in pattern.steps:
            test = self._step_test(step.label, step.preds)
            if step.axis is Axis.CHILD:
                hop = np.zeros(n, dtype=bool)
                valid = self._par_valid
                hop[valid] = frontier[self._g_par[valid]]
                frontier = hop & test
            else:
                # Strict descendants of the frontier: a running maximum
                # of frontier subtree ends covers position j iff some
                # earlier frontier node's interval contains j.
                reach = np.maximum.accumulate(
                    np.where(frontier, self._g_send, -1))
                below = np.zeros(n, dtype=bool)
                below[1:] = reach[:-1] >= np.arange(1, n, dtype=np.int64)
                frontier = below & test
            if not frontier.any():
                return self._empty()
        return self._pack_flags(frontier)

    def _empty(self) -> _NDArray:
        return np.zeros((self._ndocs, self._words), dtype=np.uint64)

    def _pack_flags(self, flags: _NDArray) -> _NDArray:
        width = self._words << 6
        bits = np.zeros(self._ndocs * width, dtype=bool)
        bits[self._g_rowbit[flags]] = True
        packed = np.packbits(bits.reshape(self._ndocs, width),
                             axis=1, bitorder="little")
        return packed.view(np.uint64)


class NumpyBackend(MaskBackend):
    """Rows are ``uint64`` words of one 2-D array; compares vectorize."""

    name = "numpy"

    def kernel(self, contexts: Sequence[Any]) -> FleetKernel:
        return _NumpyKernel(contexts)

    def pack_rows(self, rows: Sequence[int], words: int) -> _NDArray:
        nbytes = words << 3
        buf = b"".join(row.to_bytes(nbytes, "little") for row in rows)
        return np.frombuffer(buf, dtype=np.uint64).reshape(len(rows), words)

    def unpack_rows(self, matrix: _NDArray) -> list[int]:
        return [int.from_bytes(_row_bytes(row), "little") for row in matrix]

    def row_int(self, matrix: _NDArray, row: int) -> int:
        return int.from_bytes(_row_bytes(matrix[row]), "little")

    def and_not(self, a: _NDArray, b: _NDArray) -> _NDArray:
        return a & ~b

    def nonzero_rows(self, matrix: _NDArray) -> list[int]:
        return [int(i) for i in np.flatnonzero(matrix.any(axis=1))]

    def popcount_rows(self, matrix: _NDArray) -> list[int]:
        if hasattr(np, "bitwise_count"):
            counts = np.bitwise_count(matrix).sum(axis=1)
        else:  # pragma: no cover - numpy < 2.0
            counts = np.unpackbits(
                np.ascontiguousarray(matrix).view(np.uint8),
                axis=1).sum(axis=1)
        return [int(c) for c in counts]


__all__ = ["NumpyBackend"]

"""Per-constraint baseline answer *masks*, delta-maintained.

The per-op fast path of the bitset engine, shared by the single-document
:class:`~repro.stream.engine.StreamEnforcer` and the batched
:class:`~repro.masks.fleet.FleetEvaluator`: the frozen baseline answer
set of each constraint is mirrored as a slot mask over the live
snapshot, patched from the same :class:`~repro.trees.index.EditDelta`
log as the predicate masks — relocations move bits, deletions drop them
into a per-constraint *missing* ledger, and a revived node (the rollback
journal's re-add) re-earns its bit iff it carries its baseline label, so
the mask always marks exactly the baseline answer nodes present in the
document as their baseline ``(id, label)`` selves.  The cumulative check
then degenerates to mask compares — ``q_c(J_now)``'s sweep mask against
the baseline mask — and node sets are only materialised when a diff (an
actual witness) exists.  Verdicts and witnesses are bit-identical to
:class:`~repro.constraints.validity.BaselineValidity` (the Hypothesis
stream-equivalence suite pins this).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.constraints.model import ConstraintType, UpdateConstraint
from repro.constraints.validity import BaselineValidity, Violation
from repro.masks.bigint import slots_of
from repro.trees.node import Node
from repro.xpath.ast import Pattern

if TYPE_CHECKING:  # the bitset module imports this package at runtime
    from repro.xpath.bitset import BitsetEvaluator

#: One synced per-constraint entry: ``(constraint, {id: baseline label},
#: present-nodes slot mask, missing-node ids)``.
BaselineEntry = tuple[UpdateConstraint, dict[int, str], int, set[int]]


class MaskedBaseline:
    """Delta-maintained baseline masks over one live snapshot."""

    __slots__ = ("_ctx", "_revision", "_entries")

    def __init__(self, checker: BaselineValidity, ctx: "BitsetEvaluator"):
        self._ctx = ctx
        idx = ctx.index
        self._revision = idx.revision
        # Per constraint: [constraint, {id: baseline label}, mask, missing].
        # Iterates the constraint *list*, not the answers dict — duplicated
        # constraints must keep reporting duplicated witnesses, exactly
        # like the generic checker.
        base_answers = checker.baseline_answers()
        self._entries: list[list[Any]] = []
        for constraint in checker.constraints:
            answers = base_answers[constraint]
            labels = {node.nid: node.label for node in answers}
            # A freshly opened stream has every baseline node present; a
            # *restored* one may not — no-insert baseline nodes removed
            # since the stream opened start life in the missing ledger.
            mask = 0
            missing: set[int] = set()
            for node in answers:
                if node.nid in idx and idx.label(node.nid) == node.label:
                    mask |= 1 << idx.pre(node.nid)
                else:
                    missing.add(node.nid)
            self._entries.append([constraint, labels, mask, missing])

    def sync(self) -> None:
        """Catch the masks up with the snapshot's applied edits."""
        idx = self._ctx.index
        rev = idx.revision
        if rev == self._revision:
            return
        deltas = idx.deltas_since(self._revision)
        self._revision = rev
        if deltas is None:
            self._rebuild()
            return
        for entry in self._entries:
            _, labels, mask, missing = entry
            revived: set[int] = set()
            for delta in deltas:
                for nid, _ in delta.vanished:
                    if nid in labels:
                        missing.add(nid)
                mask = delta.patch_mask(mask)
                for nid in delta.added:
                    if nid in missing:
                        revived.add(nid)
            for nid in revived:
                if nid in idx and idx.label(nid) == labels[nid]:
                    mask |= 1 << idx.pre(nid)
                    missing.discard(nid)
            entry[2] = mask

    _sync = sync  # the historical internal name, kept for callers

    def _rebuild(self) -> None:
        """Past the delta log's horizon: re-anchor every mask from ids."""
        idx = self._ctx.index
        for entry in self._entries:
            _, labels, _, missing = entry
            mask = 0
            missing.clear()
            for nid, label in labels.items():
                if nid in idx and idx.label(nid) == label:
                    mask |= 1 << idx.pre(nid)
                else:
                    missing.add(nid)
            entry[2] = mask

    def entries(self) -> list[BaselineEntry]:
        """The synced per-constraint entries, in constraint order.

        The fleet evaluator packs the masks into backend rows and runs
        the compares itself; the labels dict and missing ledger are what
        witness materialisation needs on a diff.
        """
        self.sync()
        return [(entry[0], entry[1], entry[2], entry[3])
                for entry in self._entries]

    def violations(self) -> tuple[Violation, ...]:
        self.sync()
        ctx = self._ctx
        idx = ctx.index
        found: list[Violation] = []
        # One sweep per *distinct* range per call: a policy stating both
        # directions over one range (the immutability pair) must not pay
        # for the answer mask twice.
        swept: dict[Pattern, int] = {}
        for constraint, labels, base_mask, missing in self._entries:
            answer_mask = swept.get(constraint.range)
            if answer_mask is None:
                answer_mask = ctx.evaluate_mask(constraint.range)
                swept[constraint.range] = answer_mask
            violation = diff_violation(constraint, labels, base_mask,
                                       missing, answer_mask, idx)
            if violation is not None:
                found.append(violation)
        return tuple(found)


def diff_violation(constraint: UpdateConstraint, labels: dict[int, str],
                   base_mask: int, missing: set[int], answer_mask: int,
                   idx: Any) -> Violation | None:
    """One constraint's verdict from its baseline/answer mask pair.

    The shared witness-materialisation kernel of the per-op and fleet
    checks: ``None`` when the constraint holds, otherwise a
    :class:`Violation` whose node sets are decoded from the diff bits
    (and, for no-remove, the missing ledger) only.
    """
    if constraint.type is ConstraintType.NO_REMOVE:
        lost = base_mask & ~answer_mask
        if not lost and not missing:
            return None
        removed = {Node(nid, labels[nid]) for nid in missing}
        node_at = idx.node_at
        for s in slots_of(lost):
            nid = node_at(s)
            removed.add(Node(nid, labels[nid]))
        return Violation(constraint, frozenset(removed), frozenset())
    extra = answer_mask & ~base_mask
    if not extra:
        return None
    node_at = idx.node_at
    inserted = {idx.node(node_at(s)) for s in slots_of(extra)}
    return Violation(constraint, frozenset(), frozenset(inserted))


__all__ = ["MaskedBaseline", "BaselineEntry", "diff_violation"]

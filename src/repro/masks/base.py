"""The pluggable mask-backend interface of the fleet evaluator.

A *mask backend* owns one representation of "a slot mask per document"
— a matrix of bit rows, one row per document of a fleet — and the small
algebra the constraint check needs over it: pack Python big-int masks
into rows, compare row-wise, diff row-wise, and find the rows where
anything survived.  Two implementations ship:

* :class:`repro.masks.bigint.BigIntBackend` — rows *are* Python ints,
  every operation a per-row loop; bit-identical to the single-document
  :class:`~repro.xpath.bitset.BitsetEvaluator` path because it is that
  path.
* :class:`repro.masks.np_backend.NumpyBackend` — rows are ``uint64``
  words of one 2-D array; the whole fleet's compares run as a handful
  of vectorized kernels.  Optional: importing it raises
  :class:`ImportError` when numpy is absent (see
  :func:`repro.masks.get_backend` for guarded selection).

A backend also builds the :class:`FleetKernel` that evaluates one tree
pattern against *every* document of a fleet at once, returning a mask
matrix in the backend's own representation.  Decisions must be
checksum-identical across backends — the Hypothesis cross-backend suite
pins masks, verdicts and response checksums against each other.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, ClassVar, Sequence

from repro.xpath.ast import Pattern

#: A backend-owned matrix of per-document slot-mask rows.  ``list[int]``
#: for the big-int backend, a 2-D ``uint64`` ndarray for numpy — opaque
#: to callers, who go through the backend's algebra.
MaskMatrix = Any


class FleetKernel(ABC):
    """Evaluates tree patterns against every document of one fleet.

    Built by :meth:`MaskBackend.kernel` over the fleet's per-document
    evaluation contexts (duck-typed ``BitsetEvaluator`` objects — the
    kernel module must not import the bitset module, which imports this
    package).  ``invalidate`` marks one document's structure dirty; the
    kernel refreshes whatever it caches on the next evaluation.
    """

    @abstractmethod
    def evaluate(self, pattern: Pattern) -> MaskMatrix:
        """``q(root, J_d)`` for every document ``d``, as one mask matrix."""

    @abstractmethod
    def invalidate(self, doc: int) -> None:
        """Document ``doc``'s structure changed since the last evaluate."""

    @property
    @abstractmethod
    def words(self) -> int:
        """Row width in 64-bit words after the last refresh (0 = unbounded
        rows, i.e. the big-int backend)."""


class MaskBackend(ABC):
    """One representation of per-document mask rows plus its algebra."""

    name: ClassVar[str] = ""

    @abstractmethod
    def kernel(self, contexts: Sequence[Any]) -> FleetKernel:
        """A fleet kernel over per-document evaluator contexts."""

    # -- row-matrix algebra -------------------------------------------
    @abstractmethod
    def pack_rows(self, rows: Sequence[int], words: int) -> MaskMatrix:
        """Big-int masks, one per document, as a backend matrix.

        ``words`` is the row width in 64-bit words (ignored by unbounded
        representations); a mask that does not fit the width is a caller
        bug and raises ``OverflowError``.
        """

    @abstractmethod
    def unpack_rows(self, matrix: MaskMatrix) -> list[int]:
        """Every row back as a Python big-int mask (the test oracle)."""

    @abstractmethod
    def row_int(self, matrix: MaskMatrix, row: int) -> int:
        """One row as a big-int mask (witness decoding on a diff)."""

    @abstractmethod
    def and_not(self, a: MaskMatrix, b: MaskMatrix) -> MaskMatrix:
        """Row-wise ``a & ~b`` — the lost/extra diff of the check."""

    @abstractmethod
    def nonzero_rows(self, matrix: MaskMatrix) -> list[int]:
        """Indices of rows with any bit set, ascending."""

    @abstractmethod
    def popcount_rows(self, matrix: MaskMatrix) -> list[int]:
        """Per-row set-bit counts (reports and sanity checks)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


__all__ = ["MaskBackend", "FleetKernel", "MaskMatrix"]

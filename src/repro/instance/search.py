"""Bounded counterexample search for mixed-type instance problems.

The mixed-type cells of Table 2 are coNP-complete already for ``XP{/,[]}``
(Theorem 5.2), and unlike the general-implication case no fragment
restriction rescues tractability.  The hybrid engine therefore combines

* the *sound* subset test — ``C' ⊆ C`` and ``C' ⊨_J c`` imply ``C ⊨_J c`` —
  instantiated with the same-type premises and their exact engines, and
* a *sound* refutation search over structured candidate pasts, each
  validated by the independent checker before being returned.

Candidate families (for a no-insert conclusion; the no-remove side mirrors
via the embedding engine):

1. single relocations — the certificates of the pure no-insert engine,
   re-checked against the full premise set;
2. bounded cascades — up to ``max_moves`` nodes of ``J`` relocated /
   replaced simultaneously, the discrete analogue of Theorem 5.2's
   "shuffle the truth assignments" counterexamples.

The cascade walk is **copy-free and snapshot-carrying**: all candidates are
realised on one scratch tree through a move/undo journal, and on trees
worth indexing the journal is applied *through* an incrementally-maintained
:class:`~repro.xpath.bitset.BitsetEvaluator` snapshot — each candidate's
validity re-check then tests whole node-sets as masks on both sides of the
pair, instead of re-walking the scratch tree once per constraint per
candidate.  A real :meth:`~repro.trees.tree.DataTree.copy` is materialised
only for the candidate actually returned as a counterexample.  The fixed
``current`` side of every re-check shares the caller's snapshot.

The search never lies: an exhausted budget yields ``UNKNOWN``.
"""

from __future__ import annotations

import atexit
import multiprocessing
import multiprocessing.pool
from itertools import combinations

from repro.constraints.model import ConstraintSet, UpdateConstraint
from repro.constraints.validity import is_valid, violation_of
from repro.errors import TreeError
from repro.implication.result import Counterexample
from repro.trees.serialize import from_dict, to_dict
from repro.trees.tree import DataTree
from repro.xpath.bitset import BitsetEvaluator

# Below this many nodes, naive per-candidate evaluation wins: it is
# output-sensitive (child steps touch only the frontier's children), while
# a mask evaluator recomputes its per-revision predicate masks in O(|J|)
# for every journal state.  Measured breakeven sits around 240 nodes with
# descendant-axis constraints; the gate is set above it so small searches
# keep the cheap path and large ones amortise set-at-a-time checks.
SNAPSHOT_MIN_SIZE = 256


def _candidate_is_refutation(past: DataTree, current: DataTree,
                             premises: ConstraintSet,
                             conclusion: UpdateConstraint,
                             context=None, past_ctx=None) -> bool:
    return (
        violation_of(past, current, conclusion,
                     before_ctx=past_ctx, after_ctx=context) is not None
        and is_valid(past, current, premises,
                     before_ctx=past_ctx, after_ctx=context)
    )


def single_relocation_candidates(current: DataTree, conclusion: UpdateConstraint,
                                 premises: ConstraintSet, context=None):
    """Pasts produced by the pure engines' constructions, to be re-checked."""
    from repro.constraints.model import ConstraintType
    from repro.instance.no_insert_engine import implies_no_insert
    from repro.instance.no_remove_engine import implies_no_remove

    same = premises.of_type(conclusion.type)
    if conclusion.type is ConstraintType.NO_INSERT:
        outcome = implies_no_insert(same, current, conclusion, context=context)
    else:
        outcome = implies_no_remove(same, current, conclusion, context=context)
    if outcome.counterexample is not None:
        yield outcome.counterexample.before, outcome.counterexample.witness


def _cascade_walk(scratch: DataTree, max_moves: int, budget: int,
                  context: BitsetEvaluator | None = None):
    """The move/undo journal over one scratch tree (optionally snapshotted).

    When ``context`` is given it must be a mutable snapshot of ``scratch``;
    every journal move (and undo) is applied through it, so the snapshot
    tracks every candidate in place — no rebind per candidate.
    """
    movable = [nid for nid in scratch.node_ids() if nid != scratch.root]
    targets = list(scratch.node_ids())
    move = context.apply_move if context is not None else scratch.move
    produced = 0
    for count in range(1, max_moves + 1):
        for nodes in combinations(movable, count):
            for assignment in _assignments(nodes, targets):
                journal: list[tuple[int, int]] = []
                legal = True
                for nid, target in assignment:
                    old_parent = scratch.parent(nid)
                    assert old_parent is not None
                    try:
                        move(nid, target)
                    except TreeError:
                        legal = False
                        break
                    journal.append((nid, old_parent))
                if legal:
                    produced += 1
                    yield scratch, None
                # Undo in reverse: each node returns to the parent it had
                # when its move was applied, restoring the original tree.
                for nid, old_parent in reversed(journal):
                    move(nid, old_parent)
                if legal and produced >= budget:
                    return


def cascade_candidates(current: DataTree, max_moves: int, budget: int):
    """Pasts obtained by relocating up to ``max_moves`` nodes of ``J``.

    Relocation targets are other nodes of the tree (including the root);
    self- and descendant-targets are skipped.  ``budget`` caps the number of
    candidates generated.

    Every candidate is the SAME scratch tree with a journal of moves
    applied, undone before the next candidate — inspect the yielded tree
    before advancing the generator, and ``copy()`` it to keep it.
    """
    yield from _cascade_walk(current.copy(), max_moves, budget)


def _assignments(nodes, targets):
    if not nodes:
        yield ()
        return
    head, *rest = nodes
    for target in targets:
        if target == head:
            continue
        for tail in _assignments(rest, targets):
            yield ((head, target),) + tail


def _search_cascades(scratch: DataTree, current: DataTree,
                     premises: ConstraintSet, conclusion: UpdateConstraint,
                     max_moves: int, budget: int, shard: int, nshards: int,
                     context, scratch_ctx) -> tuple[int, DataTree, int | None] | None:
    """Walk the cascade family, validating one stride of the candidates.

    Every shard replays the *same* global enumeration (the journal moves
    are cheap) but runs the expensive validity re-check only on candidates
    whose 0-based index falls in its stride — the union over ``nshards``
    shards covers exactly the candidates the sequential search validates,
    with the same budget accounting.  Returns ``(index, past, witness)``
    of the shard's first refutation, so a master can pick the globally
    first one (what the sequential walk would have returned).
    """
    for idx, (past, witness) in enumerate(_cascade_walk(scratch, max_moves,
                                                        budget,
                                                        context=scratch_ctx)):
        if idx % nshards != shard:
            continue
        if _candidate_is_refutation(past, current, premises, conclusion,
                                    context=context, past_ctx=scratch_ctx):
            # The scratch tree is reused by the generator: materialise the
            # one candidate that escapes the search.
            return idx, past.copy(), witness
    return None


def _refute_shard(payload: tuple) -> tuple[int, dict, int | None] | None:
    """Process-pool entry point: one shard of the cascade search.

    The worker rebuilds the problem from its picklable wire form and owns
    a private scratch tree plus (on trees worth indexing) its own
    incremental :class:`BitsetEvaluator` snapshot driven by the move
    journal — the shard-runner pattern of :mod:`repro.stream.shard`
    applied inside a single refutation problem.
    """
    constraints, tree_dict, conclusion, max_moves, budget, shard, nshards = payload
    premises = ConstraintSet(constraints)
    current = from_dict(tree_dict)
    context = (BitsetEvaluator.for_tree(current)
               if current.size >= SNAPSHOT_MIN_SIZE else None)
    scratch = current.copy()
    scratch_ctx = (BitsetEvaluator.for_tree(scratch)
                   if scratch.size >= SNAPSHOT_MIN_SIZE else None)
    hit = _search_cascades(scratch, current, premises, conclusion,
                           max_moves, budget, shard, nshards,
                           context, scratch_ctx)
    if hit is None:
        return None
    idx, past, witness = hit
    return idx, to_dict(past), witness


# Worker pools are reused across searches (keyed by worker count): a
# batch of parallel refutations must not pay pool start-up per query.
_POOLS: dict[int, multiprocessing.pool.Pool] = {}


def _shared_pool(workers: int) -> multiprocessing.pool.Pool:
    pool = _POOLS.get(workers)
    if pool is None:
        pool = _POOLS[workers] = multiprocessing.Pool(processes=workers)
    return pool


def _close_pools() -> None:
    for pool in _POOLS.values():
        pool.terminate()
        pool.join()
    _POOLS.clear()


atexit.register(_close_pools)


def bounded_refutation(premises: ConstraintSet, current: DataTree,
                       conclusion: UpdateConstraint,
                       max_moves: int = 2, budget: int = 5000,
                       context=None, workers: int = 1) -> Counterexample | None:
    """Search the candidate families; return a *validated* certificate.

    ``context`` optionally carries an indexed snapshot of ``current``; the
    fixed side of every candidate's validity re-check then comes from
    set-at-a-time evaluation with memos shared across the whole search.
    The mutable side gets its own incremental snapshot of the scratch tree
    (on trees above :data:`SNAPSHOT_MIN_SIZE`), updated in place by the
    move journal.

    ``workers > 1`` fans the cascade family across a process pool — each
    worker replays the same enumeration on a private scratch tree (and
    private snapshots) and validates every ``workers``-th candidate.  The
    verdict, the returned counterexample and the budget accounting are
    identical to the sequential search: the globally first refutation in
    enumeration order wins, and the single-relocation family is always
    checked inline first.
    """
    for past, witness in single_relocation_candidates(current, conclusion,
                                                      premises, context=context):
        if _candidate_is_refutation(past, current, premises, conclusion,
                                    context=context):
            return Counterexample(past, current, witness=witness)
    if workers > 1:
        payloads = [(tuple(premises), to_dict(current), conclusion,
                     max_moves, budget, shard, workers)
                    for shard in range(workers)]
        hits = [h for h in _shared_pool(workers).map(_refute_shard, payloads)
                if h is not None]
        if not hits:
            return None
        _, past_dict, witness = min(hits, key=lambda h: h[0])
        return Counterexample(from_dict(past_dict), current, witness=witness)
    scratch = current.copy()
    scratch_ctx = (BitsetEvaluator.for_tree(scratch)
                   if scratch.size >= SNAPSHOT_MIN_SIZE else None)
    hit = _search_cascades(scratch, current, premises, conclusion,
                           max_moves, budget, shard=0, nshards=1,
                           context=context, scratch_ctx=scratch_ctx)
    if hit is None:
        return None
    _, past, witness = hit
    return Counterexample(past, current, witness=witness)

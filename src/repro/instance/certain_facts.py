"""Theorem 5.3: the certain-facts instance ``F_J`` (PTIME, ``XP{/,[],*}``, ``↓``).

The proof of Theorem 5.3 constructs, from the current instance ``J`` and an
all-no-insert constraint set ``C``, a single instance ``F_J`` containing
*all certain facts* about any legal past:

* for every constraint ``(q_i, ↓)`` and every node ``n ∈ q_i(J)``, a tree
  shaped like ``q_i`` is added, with ``n``'s real identifier at the
  distinguished node, fresh identifiers elsewhere and the fresh label at
  wildcards;
* trees sharing the distinguished identifier are merged along their
  root-to-``n`` spines (tree-ness forces the ancestors to coincide):
  concrete labels beat fresh ones, real identifiers beat fresh ones, and —
  as the proof argues — no conflicts can arise because all merged spines
  describe the same actual path of ``J``.

Then  ``C ⊨_J (q, ↓)``  iff  ``q(J) ⊆ q(F_J)`` (on real identifiers).

This engine is deliberately *redundant* with
:mod:`repro.instance.no_insert_engine` on its fragment — the pair is
cross-validated in the tests, reproducing the paper's own two proofs.
"""

from __future__ import annotations

from repro.constraints.model import ConstraintSet, ConstraintType, UpdateConstraint
from repro.errors import FragmentError
from repro.implication.result import ImplicationResult, implied, not_implied
from repro.trees.ops import fresh_label_for
from repro.trees.tree import DataTree
from repro.xpath.ast import Pred
from repro.xpath.evaluator import evaluate, evaluate_ids
from repro.xpath.properties import labels_of

ENGINE = "instance-certain-facts"


class _SpineNode:
    """A node of the merged certain-facts tree under construction.

    Spines are root-to-``n`` chains, so each node has at most one spine
    child; predicate trees collected from the merged constraints hang off
    as separate branches when materialised.
    """

    __slots__ = ("label", "nid", "child", "pred_trees")

    def __init__(self) -> None:
        self.label: str | None = None      # None = still fresh ("z")
        self.nid: int | None = None        # None = fresh identifier
        self.child: "_SpineNode | None" = None
        self.pred_trees: list[tuple[Pred, ...]] = []


def build_certain_facts(premises: ConstraintSet, current: DataTree,
                        context=None) -> DataTree:
    """Materialise ``F_J`` exactly as in the proof of Theorem 5.3.

    ``context`` optionally carries a snapshot evaluator of ``current``:
    witness enumeration then runs over the snapshot and the fresh-label
    choice reads the snapshot's label index instead of scanning nodes.
    """
    fragment = premises.fragment()
    if fragment.descendant:
        raise FragmentError("F_J is defined for the child-only fragment XP{/,[],*}")
    if context is not None and context.covers(current):
        data_labels = context.index.labels()
    else:
        data_labels = {node.label for node in current.nodes()}
    fresh = fresh_label_for(labels_of(*premises.ranges) | data_labels)
    # One merged spine per witnessed real node; spines are independent
    # except that two witnesses sharing an identifier share everything.
    spines: dict[int, _SpineNode] = {}
    for constraint in premises:
        pattern = constraint.range
        for node in evaluate(pattern, current, context=context):
            root = spines.setdefault(node.nid, _SpineNode())
            cursor = root
            for step in pattern.steps:
                if cursor.child is None:
                    cursor.child = _SpineNode()
                nxt = cursor.child
                if step.label is not None:
                    if nxt.label is not None and nxt.label != step.label:
                        raise AssertionError(
                            "label conflict while merging F_J spines - "
                            "impossible per Theorem 5.3's proof"
                        )
                    nxt.label = step.label
                if step.preds:
                    nxt.pred_trees.append(step.preds)
                cursor = nxt
            cursor.nid = node.nid  # the distinguished node keeps its identity

    result = DataTree()
    for spine in spines.values():
        _materialize(result, result.root, spine, fresh)
    return result


def _materialize(tree: DataTree, parent: int, node: _SpineNode, fresh: str) -> None:
    child = node.child
    if child is None:
        return
    label = child.label if child.label is not None else fresh
    nid = tree.add_child(parent, label, nid=child.nid)
    for preds in child.pred_trees:
        for pred in preds:
            _materialize_pred(tree, nid, pred, fresh)
    _materialize(tree, nid, child, fresh)


def _materialize_pred(tree: DataTree, parent: int, pred: Pred, fresh: str) -> None:
    label = pred.label if pred.label is not None else fresh
    nid = tree.add_child(parent, label)
    for child in pred.children:
        _materialize_pred(tree, nid, child, fresh)


def implies_by_certain_facts(premises: ConstraintSet, current: DataTree,
                             conclusion: UpdateConstraint,
                             context=None) -> ImplicationResult:
    """Theorem 5.3's decision: ``C ⊨_J c`` iff ``q(J) ⊆ q(F_J)``.

    ``context`` optionally carries a snapshot evaluator of ``current`` for
    the ``J``-side evaluations (``F_J`` itself is freshly built and tiny,
    so it stays on the naive path).
    """
    if any(c.type is not ConstraintType.NO_INSERT for c in premises):
        raise FragmentError("F_J engine requires an all-no-insert premise set")
    if conclusion.type is not ConstraintType.NO_INSERT:
        raise FragmentError("F_J engine decides no-insert conclusions")
    fragment = premises.fragment(conclusion.range)
    if fragment.descendant:
        raise FragmentError("F_J engine covers XP{/,[],*} (Theorem 5.3)")
    fact_tree = build_certain_facts(premises, current, context=context)
    answers_now = evaluate_ids(conclusion.range, current, context=context)
    answers_certain = evaluate_ids(conclusion.range, fact_tree)
    escaped = sorted(answers_now - answers_certain)
    if escaped:
        return not_implied(ENGINE, premises, conclusion,
                           reason=f"nodes {escaped} of q(J) are not certain in F_J",
                           f_j_size=fact_tree.size, escaped=escaped)
    return implied(ENGINE, premises, conclusion,
                   reason="q(J) ⊆ q(F_J): every member of q(J) is a certain fact",
                   f_j_size=fact_tree.size)

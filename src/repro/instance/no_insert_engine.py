"""Exact instance-based implication for all-no-insert constraints.

Setting of Section 5, ``C`` all ``↓``, conclusion ``c = (q, ↓)``: given the
*current* instance ``J``, could a past instance ``I`` exist under which some
node entered ``q``?

Characterisation (full fragment, hence the coNP-complete cell of Table 2)::

    C ⊭_J (q,↓)   iff   ∃ n ∈ q(J):   Hit(n) = ∅   or   ⋂Hit(n) ⊄ q
    where  Hit(n) = { p ∈ C : n ∈ p(J) }

*Soundness.*  With an escape witness ``(W, m)`` (``m`` in every range of
``Hit(n)``, outside ``q``) the past instance is::

    I  =  (J with n ↦ fresh n')  ⊕  W-branch carrying id n at m

Replacing ``n`` by a fresh equal-labelled node preserves every other node's
memberships; grafting the branch at the root adds none elsewhere (downward
queries, no root predicates).  Each ``p ∈ C`` holds: any node of ``p(J)``
other than ``n`` is still in ``p(I)``, and ``n ∈ p(J)`` forces ``p ∈ Hit``
whence ``n ∈ p(I)`` via ``W``.  The fresh nodes of ``I`` (``n'`` and the
branch) are invisible to no-insert premises, which only constrain ``J``.
When ``Hit(n) = ∅`` the branch is unnecessary: ``I = J with n ↦ n'``.

*Completeness.*  A real witness ``I0`` gives ``n ∈ ⋂Hit(n)(I0) ∖ q(I0)``
directly, so the intersection escapes ``q``.

On ``XP{/,[],*}`` the escape test is the closed-form intersection (PTIME —
Theorem 5.3's cell, cross-validated against the ``F_J`` construction), on
``XP{/,//,*}`` it degenerates to the automata test (Theorem 5.4), and in
general it enumerates product patterns (coNP).
"""

from __future__ import annotations

from repro.constraints.model import ConstraintSet, ConstraintType, UpdateConstraint
from repro.errors import FragmentError
from repro.implication.result import (
    Counterexample,
    ImplicationResult,
    implied,
    not_implied,
)
from repro.trees.ops import graft_at_root, remap_ids
from repro.trees.tree import DataTree
from repro.xpath.evaluator import evaluate_ids
from repro.xpath.intersection import escape_witness

ENGINE = "instance-no-insert"


def _past_instance(current: DataTree, n: int, witness_tree: DataTree | None,
                   witness_output: int | None) -> DataTree:
    """Assemble the past instance described in the module docstring."""
    past = current.copy()
    past.relabel_fresh(n)
    if witness_tree is not None:
        assert witness_output is not None
        branch = remap_ids(witness_tree, {witness_output: n})
        graft_at_root(past, branch, fresh=False)
    return past


def implies_no_insert(premises: ConstraintSet, current: DataTree,
                      conclusion: UpdateConstraint,
                      engine: str = ENGINE,
                      range_hits: dict[UpdateConstraint, set[int]] | None = None,
                      context=None,
                      ) -> ImplicationResult:
    """Exact ``C ⊨_J c`` for an all-``↓`` problem (any fragment).

    ``range_hits`` optionally supplies ``{c: c.range(current)}`` computed
    elsewhere — a :class:`repro.api.BoundReasoner` evaluates every premise
    range once per tree and shares the answer sets across conclusions.
    ``context`` optionally carries the bound reasoner's
    :class:`repro.xpath.indexed.IndexedEvaluator` snapshot of ``current``,
    so both the default ``range_hits`` and ``q(J)`` come from label-indexed
    evaluation with a shared predicate memo.
    """
    if any(c.type is not ConstraintType.NO_INSERT for c in premises):
        raise FragmentError("no-insert engine requires an all-no-insert premise set")
    if conclusion.type is not ConstraintType.NO_INSERT:
        raise FragmentError("no-insert engine decides no-insert conclusions")
    conclusion.require_concrete()
    premises.require_concrete()
    q = conclusion.range
    if range_hits is None:
        range_hits = {c: evaluate_ids(c.range, current, context=context)
                      for c in premises}
    q_ids = evaluate_ids(q, current, context=context)
    for node in sorted(q_ids):
        hit = [c.range for c in premises if node in range_hits[c]]
        if not hit:
            past = _past_instance(current, node, None, None)
            return not_implied(engine, premises, conclusion,
                               Counterexample(past, current, witness=node),
                               reason=f"node {node} sits in no premise range")
        witness = escape_witness(hit, [q])
        if witness is not None:
            past = _past_instance(current, node, witness.tree, witness.output)
            return not_implied(engine, premises, conclusion,
                               Counterexample(past, current, witness=node),
                               reason=f"node {node} could have entered q from "
                                      f"⋂ of {len(hit)} ranges")
    return implied(engine, premises, conclusion,
                   reason="every node of q(J) is pinned by its premise ranges",
                   q_nodes=len(q_ids))

"""The instance-based implication dispatcher (all of Table 2).

``implies_on(C, J, c)`` decides Definition 2.5 — for every past ``I`` with
``(I, J) ⊨ C``, does ``(I, J) ⊨ c``? — routing to:

====================================  =======================================
problem shape                          engine (exactness)
====================================  =======================================
no premise of the conclusion's type    closed-form cross-type answer (exact)
all ``↓``, conclusion ``↓``            per-witness escape engine (exact; with
                                       the ``F_J`` and automata engines as
                                       cross-checks on their fragments)
all ``↑``, conclusion ``↑``            possible-embedding engine (exact on
                                       linear / child-only conclusions; see
                                       its scope note)
mixed types                            hybrid: sound subset implication +
                                       validated bounded refutation search;
                                       may return UNKNOWN (the coNP-complete
                                       cells of Theorems 5.1/5.2)
====================================  =======================================
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.constraints.model import ConstraintSet, ConstraintType, UpdateConstraint
from repro.errors import UnsupportedProblemError
from repro.implication.result import ImplicationResult, implied, not_implied, unknown
from repro.instance.cross_type import implies_cross_type
from repro.instance.no_insert_engine import implies_no_insert
from repro.instance.no_remove_engine import implies_no_remove
from repro.instance.search import bounded_refutation
from repro.trees.tree import DataTree

HYBRID_ENGINE = "instance-hybrid"


def implies_on(premises: ConstraintSet | Iterable[UpdateConstraint],
               current: DataTree,
               conclusion: UpdateConstraint,
               require_decision: bool = False,
               max_moves: int = 2,
               search_budget: int = 5000) -> ImplicationResult:
    """Decide ``C ⊨_J c`` (Definition 2.5)."""
    if not isinstance(premises, ConstraintSet):
        premises = ConstraintSet(premises)
    conclusion.require_concrete()
    premises.require_concrete()

    same = premises.of_type(conclusion.type)
    other = premises.of_type(conclusion.type.opposite)

    if len(same) == 0 and len(other) == 0:
        # Empty premise set: same closed forms as the cross-type engine.
        return implies_cross_type(premises, current, conclusion)
    if len(same) == 0:
        return implies_cross_type(premises, current, conclusion)

    if len(other) == 0:
        if conclusion.type is ConstraintType.NO_INSERT:
            return implies_no_insert(premises, current, conclusion)
        return implies_no_remove(premises, current, conclusion)

    # ------------------------------------------------------------------
    # Mixed types: sound subset test, then validated refutation search.
    # ------------------------------------------------------------------
    if conclusion.type is ConstraintType.NO_INSERT:
        subset_result = implies_no_insert(same, current, conclusion)
    else:
        subset_result = implies_no_remove(same, current, conclusion)
    if subset_result.is_implied:
        return implied(HYBRID_ENGINE, premises, conclusion,
                       reason=f"already implied by the {len(same)} same-type "
                              f"premise(s): {subset_result.reason}")
    certificate = bounded_refutation(premises, current, conclusion,
                                     max_moves=max_moves, budget=search_budget)
    if certificate is not None:
        return not_implied(HYBRID_ENGINE, premises, conclusion, certificate,
                           reason="validated counterexample past found by search")
    if require_decision:
        raise UnsupportedProblemError(
            "mixed-type instance-based implication (coNP-complete, "
            "Theorems 5.1/5.2): sound tests were inconclusive"
        )
    return unknown(HYBRID_ENGINE, premises, conclusion,
                   reason="same-type subset does not imply c and the bounded "
                          "search found no valid past; exhaustive search over "
                          "the Theorem 5.1 small-model space is required for "
                          "a definite answer")

"""The instance-based implication dispatcher (all of Table 2).

``implies_on(C, J, c)`` decides Definition 2.5 — for every past ``I`` with
``(I, J) ⊨ C``, does ``(I, J) ⊨ c``? — routing to:

====================================  =======================================
problem shape                          engine (exactness)
====================================  =======================================
no premise of the conclusion's type    closed-form cross-type answer (exact)
all ``↓``, conclusion ``↓``            per-witness escape engine (exact; with
                                       the ``F_J`` and automata engines as
                                       cross-checks on their fragments)
all ``↑``, conclusion ``↑``            possible-embedding engine (exact on
                                       linear / child-only conclusions; see
                                       its scope note)
mixed types                            hybrid: sound subset implication +
                                       validated bounded refutation search;
                                       may return UNKNOWN (the coNP-complete
                                       cells of Theorems 5.1/5.2)
====================================  =======================================
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.constraints.model import ConstraintSet, UpdateConstraint
from repro.implication.result import ImplicationResult
from repro.trees.tree import DataTree

HYBRID_ENGINE = "instance-hybrid"


def implies_on(premises: ConstraintSet | Iterable[UpdateConstraint],
               current: DataTree,
               conclusion: UpdateConstraint,
               require_decision: bool = False,
               max_moves: int = 2,
               search_budget: int = 5000,
               indexed: bool = False,
               engine: str | None = None) -> ImplicationResult:
    """Decide ``C ⊨_J c`` (Definition 2.5).

    The dispatch lives in :class:`repro.api.session.BoundReasoner`; this
    free function is a thin route through :mod:`repro.service.dispatch`
    (a transient, cache-free session).  Callers asking many conclusions
    against one ``(C, J)`` should hold ``Reasoner(C).bind(J)`` instead
    and reuse its snapshot and per-tree answer sets.  ``indexed=True``
    (or an explicit ``engine=`` of ``"bitset"``/``"indexed"``) builds the
    snapshot even for this one-shot call (worth it on large ``J``); the
    default keeps the naive path, which the benchmarks use as their
    baseline.
    """
    from repro.service.dispatch import one_shot_implies_on

    return one_shot_implies_on(premises, current, conclusion,
                               require_decision=require_decision,
                               max_moves=max_moves,
                               search_budget=search_budget,
                               indexed=indexed, engine=engine)

"""Instance-based implication — Section 5 / Table 2 of the paper."""

from repro.instance.certain_facts import build_certain_facts, implies_by_certain_facts
from repro.instance.cross_type import implies_cross_type
from repro.instance.general import implies_on
from repro.instance.linear_engine import implies_no_insert_linear
from repro.instance.no_insert_engine import implies_no_insert
from repro.instance.no_remove_engine import implies_no_remove, merge_variants
from repro.instance.search import bounded_refutation

__all__ = [
    "implies_on",
    "implies_no_insert",
    "implies_no_insert_linear",
    "implies_no_remove",
    "implies_by_certain_facts",
    "build_certain_facts",
    "implies_cross_type",
    "bounded_refutation",
    "merge_variants",
]

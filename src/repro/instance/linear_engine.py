"""Theorem 5.4: instance-based no-insert implication for linear paths.

On ``XP{/,//,*}`` the escape test of the general no-insert engine reduces to
word-automata emptiness: a node ``n ∈ q(J)`` refutes implication iff the
language  ``⋂{L(p) : p ∈ Hit(n)} ∖ L(q)``  is non-empty (with ``Hit(n) = ∅``
meaning unconditional refutation).  With the number of constraints and the
wildcard gaps bounded, the product automata stay polynomial — exactly the
tractability conditions the theorem states.

The engine returns the same certificates as the general engine: the witness
word materialises as a fresh branch of the past instance, the node ``n``
relocating to its tip.
"""

from __future__ import annotations

from repro.automata.compile import engine_alphabet, linear_to_dfa
from repro.automata.dfa import product_dfa
from repro.constraints.model import ConstraintSet, ConstraintType, UpdateConstraint
from repro.errors import FragmentError
from repro.implication.result import (
    Counterexample,
    ImplicationResult,
    implied,
    not_implied,
)
from repro.trees.tree import DataTree
from repro.xpath.evaluator import evaluate_ids
from repro.xpath.properties import is_linear

ENGINE = "instance-linear-automata"


def _witness_word(hit_patterns, q, alphabet) -> tuple[str, ...] | None:
    """A shortest word in ``⋂ L(hit) ∖ L(q)``, or ``None``."""
    dfas = [linear_to_dfa(p, alphabet) for p in hit_patterns]
    dfas.append(linear_to_dfa(q, alphabet).complement())
    prod, _ = product_dfa(dfas)
    return prod.shortest_accepted()


def _past_instance(current: DataTree, n: int, word: tuple[str, ...] | None) -> DataTree:
    past = current.copy()
    past.relabel_fresh(n)
    if word is not None:
        parent = past.root
        for symbol in word[:-1]:
            parent = past.add_child(parent, symbol)
        past.add_child(parent, word[-1], nid=n)
    return past


def implies_no_insert_linear(premises: ConstraintSet, current: DataTree,
                             conclusion: UpdateConstraint,
                             context=None) -> ImplicationResult:
    """Exact all-``↓`` instance-based implication over ``XP{/,//,*}``.

    ``context`` optionally carries a snapshot evaluator of ``current``
    (e.g. a binding's :class:`repro.xpath.bitset.BitsetEvaluator`): the
    range evaluations then run set-at-a-time and the data alphabet comes
    from the snapshot's label index instead of a full node scan.
    """
    if any(c.type is not ConstraintType.NO_INSERT for c in premises):
        raise FragmentError("linear instance engine requires all-no-insert premises")
    if conclusion.type is not ConstraintType.NO_INSERT:
        raise FragmentError("linear instance engine decides no-insert conclusions")
    patterns = list(premises.ranges) + [conclusion.range]
    for pattern in patterns:
        if not is_linear(pattern):
            raise FragmentError(f"{pattern} has predicates: not in XP{{/,//,*}}")
    conclusion.require_concrete()
    premises.require_concrete()
    if context is not None and context.covers(current):
        data_labels = context.index.labels()
    else:
        data_labels = {node.label for node in current.nodes()}
    alphabet = engine_alphabet(patterns, extra=data_labels)
    q = conclusion.range
    range_hits = {c: evaluate_ids(c.range, current, context=context)
                  for c in premises}
    for node in sorted(evaluate_ids(q, current, context=context)):
        hit = [c.range for c in premises if node in range_hits[c]]
        if not hit:
            past = _past_instance(current, node, None)
            return not_implied(ENGINE, premises, conclusion,
                               Counterexample(past, current, witness=node),
                               reason=f"node {node} sits in no premise range")
        word = _witness_word(hit, q, alphabet)
        if word is not None:
            past = _past_instance(current, node, word)
            return not_implied(ENGINE, premises, conclusion,
                               Counterexample(past, current, witness=node),
                               reason=f"word {'/'.join(word)} realises ⋂Hit - q",
                               word=word)
    return implied(ENGINE, premises, conclusion,
                   reason="for every node of q(J), ⋂Hit ⊆ q on words")

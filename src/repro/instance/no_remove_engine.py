"""Theorem 5.5: instance-based no-remove implication by possible embeddings.

Setting: ``C`` all ``↑``, conclusion ``c = (q, ↑)``, current instance ``J``.
A violation is a past instance ``I`` with a node ``n ∈ q(I)`` that is *not*
in ``q(J)``, while every node of ``I`` keeps all its no-remove ranges into
``J``.  Following the proof:

* ``I`` can be taken to be a *possible embedding* of ``q``: a homomorphic
  image of a canonical instantiation of ``q`` (no redundant nodes), with
  wildcards drawn from the labels of ``J`` plus a fresh label and chain gaps
  capped by the star length;
* every node of ``I`` lying in some premise range must be *identified* with
  a distinct node of ``J`` carrying the same label and at least the same
  range memberships — a bipartite matching problem (solved exactly with
  networkx's Hopcroft-Karp);
* the witness node additionally must avoid ``q(J)`` (or stay fresh).

Complexity matches the theorem: polynomial in ``|J|`` and ``|C|``,
exponential in ``|c|`` (instantiations x sibling-merge quotients).

Scope note (documented deviation): homomorphic images are enumerated as
*sibling-label merges* of canonical instantiations.  This captures every
quotient of a ground tree and is complete whenever ``q`` is linear or
child-only; when ``q`` combines ``//`` with predicates, embeddings that
route a descendant gap *through another predicate's concrete nodes* are not
enumerated, so the engine may over-report implication on such queries.  The
brute-force oracle tests pin down the fragments where exactness is claimed.
"""

from __future__ import annotations

import networkx as nx

from repro.constraints.model import ConstraintSet, ConstraintType, UpdateConstraint
from repro.errors import FragmentError
from repro.implication.result import (
    Counterexample,
    ImplicationResult,
    implied,
    not_implied,
)
from repro.trees.ops import fresh_label_for, remap_ids
from repro.trees.tree import DataTree
from repro.xpath.bitset import BitsetEvaluator
from repro.xpath.canonical import canonical_models
from repro.xpath.evaluator import evaluate_ids
from repro.xpath.properties import labels_of, max_star_length

ENGINE = "instance-no-remove-embeddings"

# Canonical instantiations of q are usually tiny, and naive evaluation of
# a tiny candidate is output-sensitive and cheap; only quotient walks over
# models at least this large carry an incremental snapshot (every premise
# range is re-evaluated per quotient there, so masks amortise sooner than
# in the cascade search).
MERGE_SNAPSHOT_MIN_SIZE = 24


# ----------------------------------------------------------------------
# Sibling-merge closure (homomorphic quotients of a ground tree)
# ----------------------------------------------------------------------
def merge_variants(tree: DataTree, output: int, budget: int = 512):
    """Enumerate quotients of ``tree`` under same-label sibling merges.

    Yields ``(tree, output)`` pairs, the original included, deduplicated by
    shape.  Merging two same-labelled siblings redirects the children of one
    under the other; the output node always survives a merge involving it.

    The walk is copy-free: every quotient is realised on ONE scratch tree by
    a merge journal (move children, drop the emptied sibling) that is undone
    after the recursive exploration returns.  The yielded tree is therefore
    only valid until the generator is advanced — consumers that keep a
    candidate must :meth:`~repro.trees.tree.DataTree.copy` it (the engine
    below materialises through ``remap_ids``, which already copies).
    """
    yield from _merge_walk(tree.copy(), output, budget)


def _merge_walk(scratch: DataTree, output: int, budget: int = 512,
                context=None):
    """The merge/undo journal over one scratch tree (optionally snapshotted).

    ``context`` is a mutable snapshot evaluator of ``scratch`` (e.g. a
    :class:`repro.xpath.bitset.BitsetEvaluator`); when given, every journal
    edit — child relocations, the emptied sibling's removal and its
    revival on undo — is applied through it, so candidate quotients are
    evaluated set-at-a-time without rebinding per candidate.
    """
    seen: set[tuple] = set()
    produced = 0
    if context is not None:
        move = context.apply_move
        remove_leaf = context.apply_remove_subtree
        add_leaf = context.apply_add_leaf
    else:
        move = scratch.move
        remove_leaf = scratch.remove_subtree
        add_leaf = scratch.add_child

    def merge_ops():
        """Applicable (parent, keep, drop) merges of the current scratch."""
        ops = []
        for parent in list(scratch.node_ids()):
            kids = scratch.children(parent)
            for i in range(len(kids)):
                for j in range(i + 1, len(kids)):
                    a, b = kids[i], kids[j]
                    if scratch.label(a) != scratch.label(b):
                        continue
                    keep, drop = (a, b) if b != output else (b, a)
                    ops.append((parent, keep, drop))
        return ops

    def apply(parent, keep, drop):
        moved = list(scratch.children(drop))
        drop_label = scratch.label(drop)
        for child in moved:
            move(child, keep)
        remove_leaf(drop)
        return (parent, drop, drop_label, moved)

    def revert(record):
        # Revive the dropped sibling (same id, same label) and hand its
        # children back.
        parent, drop, drop_label, moved = record
        add_leaf(parent, drop_label, nid=drop)
        for child in moved:
            move(child, drop)

    seen.add(_shape_key(scratch, output))
    produced += 1
    yield scratch, output
    # Explicit DFS (no recursion limit on long merge chains): one iterator
    # of untried ops per depth, one applied-merge record per depth below
    # the original tree.
    pending = [iter(merge_ops())]
    applied: list[tuple] = []
    while pending:
        op = next(pending[-1], None)
        if op is None:
            pending.pop()
            if applied:
                revert(applied.pop())
            continue
        record = apply(*op)
        key = _shape_key(scratch, output)
        if key in seen:
            revert(record)
            continue
        seen.add(key)
        produced += 1
        yield scratch, output
        if produced >= budget:
            return
        applied.append(record)
        pending.append(iter(merge_ops()))


def _shape_key(tree: DataTree, out: int) -> str:
    # Iterative fold (reversed preorder visits children before parents) into
    # FLAT strings: nested-tuple keys recurse during hashing/equality inside
    # the dedup set, so deep quotient chains would hit the recursion limit.
    # repr() quotes labels, keeping the serialisation unambiguous.
    order: list[int] = []
    stack = [tree.root]
    while stack:
        nid = stack.pop()
        order.append(nid)
        stack.extend(tree.children(nid))
    keys: dict[int, str] = {}
    for nid in reversed(order):
        kids = sorted(keys.pop(c) for c in tree.children(nid))
        mark = "*" if nid == out else ""
        keys[nid] = f"{tree.label(nid)!r}{mark}({','.join(kids)})"
    return keys[tree.root]


# ----------------------------------------------------------------------
# Identification against J (bipartite matching)
# ----------------------------------------------------------------------
def _identify(candidate: DataTree, output: int, current: DataTree,
              premises: ConstraintSet, q_answers: set[int],
              range_hits_j: dict[UpdateConstraint, set[int]],
              candidate_ctx=None,
              ) -> dict[int, int] | None:
    """Match obligation-carrying candidate nodes to distinct J-nodes.

    Returns the id substitution (candidate id -> J id) or ``None``.
    ``range_hits_j`` holds ``{c: c.range(current)}`` — loop-invariant across
    candidates, so the caller evaluates it once.  ``candidate_ctx``
    optionally carries the merge walk's incremental snapshot of
    ``candidate``, so the per-candidate premise evaluations run
    set-at-a-time.
    """
    range_hits_i = {c: evaluate_ids(c.range, candidate, context=candidate_ctx)
                    for c in premises}
    j_nodes = [nid for nid in current.node_ids() if nid != current.root]

    graph = nx.Graph()
    need: list[int] = []
    for nid in candidate.node_ids():
        if nid == candidate.root:
            continue
        obligations = [c for c in premises if nid in range_hits_i[c]]
        if not obligations:
            continue
        need.append(nid)
        label = candidate.label(nid)
        for j in j_nodes:
            if current.label(j) != label:
                continue
            if any(j not in range_hits_j[c] for c in obligations):
                continue
            if nid == output and j in q_answers:
                continue  # the witness must not already satisfy q in J
            graph.add_edge(("i", nid), ("j", j))
    for nid in need:
        if ("i", nid) not in graph:
            return None
    if not need:
        return {}
    matching = nx.algorithms.bipartite.maximum_matching(
        graph, top_nodes=[("i", n) for n in need]
    )
    mapping: dict[int, int] = {}
    for nid in need:
        partner = matching.get(("i", nid))
        if partner is None:
            return None
        mapping[nid] = partner[1]
    return mapping


def implies_no_remove(premises: ConstraintSet, current: DataTree,
                      conclusion: UpdateConstraint,
                      merge_budget: int = 512,
                      range_hits: dict[UpdateConstraint, set[int]] | None = None,
                      context=None,
                      ) -> ImplicationResult:
    """Instance-based implication for an all-``↑`` problem (Theorem 5.5).

    ``range_hits`` optionally supplies ``{c: c.range(current)}`` computed
    elsewhere (a :class:`repro.api.BoundReasoner` shares them across
    conclusions); otherwise they are evaluated once here and reused for
    every candidate embedding.  ``context`` optionally carries an
    :class:`repro.xpath.indexed.IndexedEvaluator` snapshot of ``current``
    for the ``J``-side evaluations (candidate embeddings are tiny and stay
    on the naive path).
    """
    if any(c.type is not ConstraintType.NO_REMOVE for c in premises):
        raise FragmentError("no-remove engine requires an all-no-remove premise set")
    if conclusion.type is not ConstraintType.NO_REMOVE:
        raise FragmentError("no-remove engine decides no-remove conclusions")
    conclusion.require_concrete()
    premises.require_concrete()
    q = conclusion.range
    cap = max_star_length(list(premises.ranges) + [q]) + 1
    data_labels = {node.label for node in current.nodes() if node.nid != current.root}
    fresh = fresh_label_for(labels_of(q, *premises.ranges) | data_labels)
    wildcard_labels = sorted(data_labels) + [fresh]
    q_answers = evaluate_ids(q, current, context=context)
    if range_hits is None:
        range_hits = {c: evaluate_ids(c.range, current, context=context)
                      for c in premises}

    checked = 0
    for model in canonical_models(q, cap, wildcard_labels=wildcard_labels, fresh=fresh):
        scratch = model.tree.copy()
        scratch_ctx = (BitsetEvaluator.for_tree(scratch)
                       if scratch.size >= MERGE_SNAPSHOT_MIN_SIZE else None)
        for candidate, output in _merge_walk(scratch, model.output,
                                             budget=merge_budget,
                                             context=scratch_ctx):
            checked += 1
            mapping = _identify(candidate, output, current, premises, q_answers,
                                range_hits, candidate_ctx=scratch_ctx)
            if mapping is None:
                continue
            past = remap_ids(candidate, mapping)
            witness = mapping.get(output, output)
            return not_implied(ENGINE, premises, conclusion,
                               Counterexample(past, current, witness=witness),
                               reason="a possible embedding of q admits a "
                                      "consistent identification against J",
                               candidates_checked=checked)
    return implied(ENGINE, premises, conclusion,
                   reason="no possible embedding of q can be identified "
                          "consistently with J",
                   candidates_checked=checked)

"""Theorem 5.5: instance-based no-remove implication by possible embeddings.

Setting: ``C`` all ``↑``, conclusion ``c = (q, ↑)``, current instance ``J``.
A violation is a past instance ``I`` with a node ``n ∈ q(I)`` that is *not*
in ``q(J)``, while every node of ``I`` keeps all its no-remove ranges into
``J``.  Following the proof:

* ``I`` can be taken to be a *possible embedding* of ``q``: a homomorphic
  image of a canonical instantiation of ``q`` (no redundant nodes), with
  wildcards drawn from the labels of ``J`` plus a fresh label and chain gaps
  capped by the star length;
* every node of ``I`` lying in some premise range must be *identified* with
  a distinct node of ``J`` carrying the same label and at least the same
  range memberships — a bipartite matching problem (solved exactly with
  networkx's Hopcroft-Karp);
* the witness node additionally must avoid ``q(J)`` (or stay fresh).

Complexity matches the theorem: polynomial in ``|J|`` and ``|C|``,
exponential in ``|c|`` (instantiations x sibling-merge quotients).

Scope note (documented deviation): homomorphic images are enumerated as
*sibling-label merges* of canonical instantiations.  This captures every
quotient of a ground tree and is complete whenever ``q`` is linear or
child-only; when ``q`` combines ``//`` with predicates, embeddings that
route a descendant gap *through another predicate's concrete nodes* are not
enumerated, so the engine may over-report implication on such queries.  The
brute-force oracle tests pin down the fragments where exactness is claimed.
"""

from __future__ import annotations

import networkx as nx

from repro.constraints.model import ConstraintSet, ConstraintType, UpdateConstraint
from repro.errors import FragmentError
from repro.implication.result import (
    Counterexample,
    ImplicationResult,
    implied,
    not_implied,
)
from repro.trees.ops import fresh_label_for, remap_ids
from repro.trees.tree import DataTree
from repro.xpath.canonical import canonical_models
from repro.xpath.evaluator import evaluate_ids
from repro.xpath.properties import labels_of, max_star_length

ENGINE = "instance-no-remove-embeddings"


# ----------------------------------------------------------------------
# Sibling-merge closure (homomorphic quotients of a ground tree)
# ----------------------------------------------------------------------
def merge_variants(tree: DataTree, output: int, budget: int = 512):
    """Enumerate quotients of ``tree`` under same-label sibling merges.

    Yields ``(tree, output)`` pairs, the original included, deduplicated by
    shape.  Merging two same-labelled siblings redirects the children of one
    under the other; the output node always survives a merge involving it.
    """
    seen: set[tuple] = set()
    stack: list[tuple[DataTree, int]] = [(tree, output)]
    produced = 0
    while stack and produced < budget:
        current, out = stack.pop()
        key = _shape_key(current, out)
        if key in seen:
            continue
        seen.add(key)
        produced += 1
        yield current, out
        for parent in list(current.node_ids()):
            kids = current.children(parent)
            for i in range(len(kids)):
                for j in range(i + 1, len(kids)):
                    a, b = kids[i], kids[j]
                    if current.label(a) != current.label(b):
                        continue
                    keep, drop = (a, b) if b != out else (b, a)
                    merged = current.copy()
                    for child in merged.children(drop):
                        merged.move(child, keep)
                    merged.remove_subtree(drop)
                    stack.append((merged, out))


def _shape_key(tree: DataTree, out: int) -> tuple:
    def shape(nid: int) -> tuple:
        kids = sorted(shape(c) for c in tree.children(nid))
        return ((tree.label(nid), nid == out), tuple(kids))

    return shape(tree.root)


# ----------------------------------------------------------------------
# Identification against J (bipartite matching)
# ----------------------------------------------------------------------
def _identify(candidate: DataTree, output: int, current: DataTree,
              premises: ConstraintSet, q_answers: set[int],
              range_hits_j: dict[UpdateConstraint, set[int]],
              ) -> dict[int, int] | None:
    """Match obligation-carrying candidate nodes to distinct J-nodes.

    Returns the id substitution (candidate id -> J id) or ``None``.
    ``range_hits_j`` holds ``{c: c.range(current)}`` — loop-invariant across
    candidates, so the caller evaluates it once.
    """
    range_hits_i = {c: evaluate_ids(c.range, candidate) for c in premises}
    j_nodes = [nid for nid in current.node_ids() if nid != current.root]

    graph = nx.Graph()
    need: list[int] = []
    for nid in candidate.node_ids():
        if nid == candidate.root:
            continue
        obligations = [c for c in premises if nid in range_hits_i[c]]
        if not obligations:
            continue
        need.append(nid)
        label = candidate.label(nid)
        for j in j_nodes:
            if current.label(j) != label:
                continue
            if any(j not in range_hits_j[c] for c in obligations):
                continue
            if nid == output and j in q_answers:
                continue  # the witness must not already satisfy q in J
            graph.add_edge(("i", nid), ("j", j))
    for nid in need:
        if ("i", nid) not in graph:
            return None
    if not need:
        return {}
    matching = nx.algorithms.bipartite.maximum_matching(
        graph, top_nodes=[("i", n) for n in need]
    )
    mapping: dict[int, int] = {}
    for nid in need:
        partner = matching.get(("i", nid))
        if partner is None:
            return None
        mapping[nid] = partner[1]
    return mapping


def implies_no_remove(premises: ConstraintSet, current: DataTree,
                      conclusion: UpdateConstraint,
                      merge_budget: int = 512,
                      range_hits: dict[UpdateConstraint, set[int]] | None = None,
                      ) -> ImplicationResult:
    """Instance-based implication for an all-``↑`` problem (Theorem 5.5).

    ``range_hits`` optionally supplies ``{c: c.range(current)}`` computed
    elsewhere (a :class:`repro.api.BoundReasoner` shares them across
    conclusions); otherwise they are evaluated once here and reused for
    every candidate embedding.
    """
    if any(c.type is not ConstraintType.NO_REMOVE for c in premises):
        raise FragmentError("no-remove engine requires an all-no-remove premise set")
    if conclusion.type is not ConstraintType.NO_REMOVE:
        raise FragmentError("no-remove engine decides no-remove conclusions")
    conclusion.require_concrete()
    premises.require_concrete()
    q = conclusion.range
    cap = max_star_length(list(premises.ranges) + [q]) + 1
    data_labels = {node.label for node in current.nodes() if node.nid != current.root}
    fresh = fresh_label_for(labels_of(q, *premises.ranges) | data_labels)
    wildcard_labels = sorted(data_labels) + [fresh]
    q_answers = evaluate_ids(q, current)
    if range_hits is None:
        range_hits = {c: evaluate_ids(c.range, current) for c in premises}

    checked = 0
    for model in canonical_models(q, cap, wildcard_labels=wildcard_labels, fresh=fresh):
        for candidate, output in merge_variants(model.tree, model.output,
                                                budget=merge_budget):
            checked += 1
            mapping = _identify(candidate, output, current, premises, q_answers,
                                range_hits)
            if mapping is None:
                continue
            past = remap_ids(candidate, mapping)
            witness = mapping.get(output, output)
            return not_implied(ENGINE, premises, conclusion,
                               Counterexample(past, current, witness=witness),
                               reason="a possible embedding of q admits a "
                                      "consistent identification against J",
                               candidates_checked=checked)
    return implied(ENGINE, premises, conclusion,
                   reason="no possible embedding of q can be identified "
                          "consistently with J",
                   candidates_checked=checked)

"""Cross-type corners of instance-based implication (exact).

With the current instance ``J`` fixed, premise sets devoid of the
conclusion's type admit closed-form answers:

* all-``↑`` premises, conclusion ``(q, ↓)``: the *empty* past instance
  satisfies every no-remove constraint vacuously, so implication holds iff
  ``q(J) = ∅`` (nothing could have been inserted because nothing is there);
* all-``↓`` premises, conclusion ``(q, ↑)``: never implied — enlarge the
  past with a fresh canonical ``q``-branch; no-insert premises only
  constrain ``J``, which is untouched.
"""

from __future__ import annotations

from repro.constraints.model import ConstraintSet, ConstraintType, UpdateConstraint
from repro.implication.result import (
    Counterexample,
    ImplicationResult,
    implied,
    not_implied,
)
from repro.trees.ops import graft_at_root
from repro.trees.tree import DataTree
from repro.xpath.canonical import smallest_model
from repro.xpath.evaluator import evaluate_ids

ENGINE = "instance-cross-type"


def implies_cross_type(premises: ConstraintSet, current: DataTree,
                       conclusion: UpdateConstraint,
                       context=None) -> ImplicationResult:
    """Exact answer when no premise has the conclusion's type.

    ``context`` optionally carries an indexed snapshot of ``current``.
    """
    assert len(premises.of_type(conclusion.type)) == 0
    if conclusion.type is ConstraintType.NO_INSERT:
        answers = evaluate_ids(conclusion.range, current, context=context)
        if not answers:
            return implied(ENGINE, premises, conclusion,
                           reason="q(J) is empty: no insertion to explain")
        past = DataTree()  # the empty past: every no-remove premise holds
        witness = min(answers)
        return not_implied(ENGINE, premises, conclusion,
                           Counterexample(past, current, witness=witness),
                           reason="an empty past explains any content of q(J)")
    # Conclusion no-remove, premises all no-insert: never implied.
    model = smallest_model(conclusion.range)
    past = current.copy()
    mapping = graft_at_root(past, model.tree, fresh=False)
    return not_implied(ENGINE, premises, conclusion,
                       Counterexample(past, current, witness=mapping[model.output]),
                       reason="a fresh q-branch in the past violates no "
                              "no-insert premise")

"""Memoisation primitives shared across the library.

The dispatchers of Tables 1 and 2 are pure functions of the *canonical
forms* of their inputs: ``implies`` of ``(C, c)`` and ``implies_on`` of
``(C, J, c)`` (plus the search knobs of the hybrid instance engine).  A
session memo is private to its :class:`~repro.api.session.Reasoner`, so
the premise set ``C`` is implicit in the cache instance; entries are keyed
on :attr:`UpdateConstraint.canonical_key` of the conclusion (and the
search knobs), so syntactic variants of the same query (permuted or
duplicated predicates) share one cache line.

The same primitive caps the per-snapshot query and predicate memos of the
:class:`repro.xpath.indexed.IndexedEvaluator` and
:class:`repro.xpath.bitset.BitsetEvaluator` — long-lived bindings serving
adversarial query streams must not grow without bound.  It lives here (not
under :mod:`repro.api`) because ``api`` already imports ``xpath``.

:class:`LRUMemo` is a small insertion-ordered LRU with hit/miss counters;
:class:`CacheStats` is the immutable snapshot surfaced through
``Reasoner.stats``.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Callable, Hashable
from dataclasses import dataclass
from typing import Any

DEFAULT_MEMO_SIZE = 4096

_MISS = object()  # sentinel distinguishing "absent" from cached falsy values


@dataclass(frozen=True)
class CacheStats:
    """Snapshot of a memo cache's effectiveness."""

    hits: int
    misses: int
    size: int
    maxsize: int

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        return self.hits / self.requests if self.requests else 0.0

    def __str__(self) -> str:
        return (f"{self.hits}/{self.requests} hits "
                f"({self.hit_rate:.0%}), {self.size}/{self.maxsize} entries")


class LRUMemo:
    """A least-recently-used memo table with statistics.

    ``maxsize=0`` disables caching entirely (every lookup recomputes) —
    the mode the legacy free functions use through their transient
    :class:`~repro.api.session.Reasoner`; ``maxsize=None`` means unbounded.
    """

    __slots__ = ("_data", "_maxsize", "_hits", "_misses")

    def __init__(self, maxsize: int | None = DEFAULT_MEMO_SIZE):
        if maxsize is not None and maxsize < 0:
            raise ValueError("maxsize must be None (unbounded) or >= 0")
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._maxsize = maxsize
        self._hits = 0
        self._misses = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    @property
    def enabled(self) -> bool:
        return self._maxsize is None or self._maxsize > 0

    def keys(self) -> list[Hashable]:
        """The cached keys, LRU-first (a stable copy, safe to mutate over)."""
        return list(self._data)

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Cached value for ``key`` without touching recency or statistics.

        Maintenance passes (e.g. batch delta-patching every cached mask)
        must not distort the LRU order or the hit/miss counters callers
        read as *query* statistics.
        """
        return self._data.get(key, default)

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Cached value for ``key`` (touching its recency), else ``default``.

        Paired with :meth:`put`, this is the allocation-free alternative to
        :meth:`get_or_compute` for hot paths that cannot afford a closure
        per lookup.  Falsy cached values are valid: pass a sentinel default
        when they can occur.
        """
        try:
            value = self._data[key]
        except KeyError:
            self._misses += 1
            return default
        self._hits += 1
        self._data.move_to_end(key)
        return value

    def put(self, key: Hashable, value: Any) -> Any:
        """Store ``value`` under ``key`` (evicting LRU entries); return it."""
        if not self.enabled:
            return value
        self._data[key] = value
        self._data.move_to_end(key)
        if self._maxsize is not None and len(self._data) > self._maxsize:
            self._data.popitem(last=False)
        return value

    def get_or_compute(self, key: Hashable, compute: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, computing and storing on miss."""
        if not self.enabled:
            self._misses += 1
            return compute()
        try:
            value = self._data[key]
        except KeyError:
            self._misses += 1
            value = compute()
            self._data[key] = value
            if self._maxsize is not None and len(self._data) > self._maxsize:
                self._data.popitem(last=False)
            return value
        self._hits += 1
        self._data.move_to_end(key)
        return value

    def clear(self) -> None:
        self._data.clear()

    @property
    def stats(self) -> CacheStats:
        maxsize = -1 if self._maxsize is None else self._maxsize
        return CacheStats(self._hits, self._misses, len(self._data), maxsize)


__all__ = ["DEFAULT_MEMO_SIZE", "CacheStats", "LRUMemo"]
